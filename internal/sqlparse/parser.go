package sqlparse

import (
	"fmt"
	"sync"

	"setm/internal/tuple"
)

// arena holds every AST node the parser builds, bucketed by type. Nodes are
// appended to the slabs and handed out as element pointers; Reset truncates
// the slabs in place, so a reused parser reaches a steady state where
// parsing performs no allocations at all. Growing a slab may move it, but
// previously handed-out pointers keep referring to the old backing array,
// which is never rewritten until the next Reset — the tree stays consistent.
type arena struct {
	bins     []BinaryExpr
	nots     []NotExpr
	cols     []ColumnRef
	ints     []IntLit
	strs     []StringLit
	params   []Param
	aggs     []AggExpr
	selects  []Select
	explains []Explain
	creates  []CreateTable
	drops    []DropTable
	deletes  []DeleteAll
	inserts  []Insert
	items    []SelectItem
	refs     []TableRef
	orders   []OrderItem
	exprs    []Expr
	rows     [][]Expr
	tcols    []tuple.Column
	names    []string
	stmts    []Stmt
}

func (a *arena) reset() {
	a.bins = a.bins[:0]
	a.nots = a.nots[:0]
	a.cols = a.cols[:0]
	a.ints = a.ints[:0]
	a.strs = a.strs[:0]
	a.params = a.params[:0]
	a.aggs = a.aggs[:0]
	a.selects = a.selects[:0]
	a.explains = a.explains[:0]
	a.creates = a.creates[:0]
	a.drops = a.drops[:0]
	a.deletes = a.deletes[:0]
	a.inserts = a.inserts[:0]
	a.items = a.items[:0]
	a.refs = a.refs[:0]
	a.orders = a.orders[:0]
	a.exprs = a.exprs[:0]
	a.rows = a.rows[:0]
	a.tcols = a.tcols[:0]
	a.names = a.names[:0]
	a.stmts = a.stmts[:0]
}

func (a *arena) newBinary(op BinaryOp, l, r Expr) *BinaryExpr {
	a.bins = append(a.bins, BinaryExpr{Op: op, L: l, R: r})
	return &a.bins[len(a.bins)-1]
}

func (a *arena) newNot(e Expr) *NotExpr {
	a.nots = append(a.nots, NotExpr{E: e})
	return &a.nots[len(a.nots)-1]
}

func (a *arena) newCol(qual, name string) *ColumnRef {
	a.cols = append(a.cols, ColumnRef{Qualifier: qual, Name: name})
	return &a.cols[len(a.cols)-1]
}

func (a *arena) newInt(v int64) *IntLit {
	a.ints = append(a.ints, IntLit{Value: v})
	return &a.ints[len(a.ints)-1]
}

func (a *arena) newString(s string) *StringLit {
	a.strs = append(a.strs, StringLit{Value: s})
	return &a.strs[len(a.strs)-1]
}

func (a *arena) newParam(name string) *Param {
	a.params = append(a.params, Param{Name: name})
	return &a.params[len(a.params)-1]
}

func (a *arena) newAgg(fn AggFunc) *AggExpr {
	a.aggs = append(a.aggs, AggExpr{Func: fn})
	return &a.aggs[len(a.aggs)-1]
}

// Parser is a reusable zero-allocation SQL parser. The typical pooled cycle
// is Reset(src) followed by one ParseStatement or ParseScript call; the
// returned AST aliases the parser's arena and remains valid only until the
// next Reset (or ReleaseParser). Use the package-level Parse/ParseScript
// when the AST must outlive the call — they dedicate a fresh parser whose
// arena the AST then owns.
//
// The input is prescanned into a reused token slab, so advancing during the
// parse is a pointer bump with no scanner state to thread.
type Parser struct {
	sc      scanner
	toks    []token // prescanned tokens, reused across Resets
	ti      int     // index of the current token
	scanErr error   // lex error recorded behind a tokErr sentinel
	tok     *token  // &toks[ti]
	a       arena
}

// NewParser returns an empty reusable parser.
func NewParser() *Parser { return &Parser{} }

// Reset points the parser at src and recycles the arena, invalidating every
// AST this parser produced earlier.
func (p *Parser) Reset(src string) {
	p.sc.init(src)
	p.a.reset()
	p.toks = p.toks[:0]
	p.ti = 0
	p.scanErr = nil
	p.tok = nil
}

// prescan tokenizes the whole input into the slab. A scan failure becomes a
// trailing tokErr sentinel so it is reported only if parsing reaches it.
// Slots from earlier Resets are overwritten rather than re-zeroed: the
// scanner sets every field a token kind reads.
func (p *Parser) prescan() {
	toks := p.toks[:cap(p.toks)]
	n := 0
	for {
		if n == len(toks) {
			toks = append(toks, token{})
			toks = toks[:cap(toks)]
		}
		t := &toks[n]
		n++
		if err := p.sc.next(t); err != nil {
			t.kind = tokErr
			p.scanErr = err
			break
		}
		if t.kind == TokEOF {
			break
		}
	}
	p.toks = toks[:n]
}

// start prescans and positions the parser on the first token.
func (p *Parser) start() error {
	p.prescan()
	p.ti = 0
	t := &p.toks[0]
	if t.kind == tokErr {
		return p.scanErr
	}
	p.tok = t
	return nil
}

func (p *Parser) next() error {
	if p.ti+1 < len(p.toks) {
		p.ti++
	}
	t := &p.toks[p.ti]
	if t.kind == tokErr {
		return p.scanErr
	}
	p.tok = t
	return nil
}

var parserPool = sync.Pool{New: func() interface{} { return NewParser() }}

// AcquireParser returns a parser from a process-wide pool. ASTs it produces
// alias the parser's arena: parse, use the AST, then ReleaseParser — after
// that (or after Reset) the AST must not be touched.
func AcquireParser() *Parser { return parserPool.Get().(*Parser) }

// ReleaseParser returns p to the pool, invalidating all ASTs it produced.
func ReleaseParser(p *Parser) {
	p.sc.src = ""
	p.tok = nil
	parserPool.Put(p)
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
// The returned AST owns its backing memory.
func Parse(src string) (Stmt, error) {
	p := NewParser()
	p.Reset(src)
	return p.ParseStatement()
}

// ParseScript parses a semicolon-separated sequence of statements. The
// returned ASTs own their backing memory.
func ParseScript(src string) ([]Stmt, error) {
	p := NewParser()
	p.Reset(src)
	return p.ParseScript()
}

// ParseStatement parses the source given to Reset as one statement (a
// trailing semicolon is allowed).
func (p *Parser) ParseStatement() (Stmt, error) {
	if err := p.start(); err != nil {
		return nil, err
	}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.isSym(';') {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != TokEOF {
		return nil, p.errf("unexpected %s after statement", p.tok.describe())
	}
	return st, nil
}

// ParseScript parses the source given to Reset as a semicolon-separated
// sequence of statements.
func (p *Parser) ParseScript() ([]Stmt, error) {
	if err := p.start(); err != nil {
		return nil, err
	}
	start := len(p.a.stmts)
	for p.tok.kind != TokEOF {
		if p.isSym(';') {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		p.a.stmts = append(p.a.stmts, st)
	}
	if len(p.a.stmts) == start {
		return nil, nil
	}
	end := len(p.a.stmts)
	return p.a.stmts[start:end:end], nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql:%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *Parser) isKw(id kwID) bool { return p.tok.kind == TokKeyword && p.tok.kw == id }

func (p *Parser) acceptKw(id kwID) (bool, error) {
	if p.isKw(id) {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) expectKw(id kwID) error {
	if !p.isKw(id) {
		return p.errf("expected %s, found %s", kwNames[id], p.tok.describe())
	}
	return p.next()
}

func (p *Parser) isSym(sym byte) bool { return p.tok.kind == TokSymbol && p.tok.sym == sym }

func (p *Parser) acceptSym(sym byte) (bool, error) {
	if p.isSym(sym) {
		return true, p.next()
	}
	return false, nil
}

func symString(sym byte) string {
	switch sym {
	case symLE:
		return "<="
	case symGE:
		return ">="
	case symNE:
		return "<>"
	}
	return string(rune(sym))
}

func (p *Parser) expectSym(sym byte) error {
	if !p.isSym(sym) {
		return p.errf("expected %q, found %s", symString(sym), p.tok.describe())
	}
	return p.next()
}

func (p *Parser) expectIdent() (string, error) {
	if p.tok.kind != TokIdent {
		return "", p.errf("expected identifier, found %s", p.tok.describe())
	}
	name := p.tok.text
	return name, p.next()
}

func (p *Parser) parseStmt() (Stmt, error) {
	if p.tok.kind == TokKeyword {
		switch p.tok.kw {
		case kwCreate:
			return p.parseCreate()
		case kwDrop:
			return p.parseDrop()
		case kwDelete:
			return p.parseDelete()
		case kwInsert:
			return p.parseInsert()
		case kwSelect:
			return p.parseSelect()
		case kwExplain:
			if err := p.next(); err != nil {
				return nil, err
			}
			// ANALYZE is a soft keyword: recognized only here, still usable
			// as an ordinary identifier everywhere else.
			analyze := false
			if p.tok.kind == TokIdent && isAnalyzeWord(p.tok.text) {
				analyze = true
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if !p.isKw(kwSelect) {
				return nil, p.errf("expected SELECT after EXPLAIN, found %s", p.tok.describe())
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			p.a.explains = append(p.a.explains, Explain{Select: sel, Analyze: analyze})
			return &p.a.explains[len(p.a.explains)-1], nil
		}
	}
	return nil, p.errf("expected statement, found %s", p.tok.describe())
}

func isAnalyzeWord(s string) bool {
	if len(s) != 7 {
		return false
	}
	const want = "ANALYZE"
	for i := 0; i < 7; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}

func (p *Parser) parseCreate() (Stmt, error) {
	if err := p.next(); err != nil { // CREATE
		return nil, err
	}
	if err := p.expectKw(kwTable); err != nil {
		return nil, err
	}
	p.a.creates = append(p.a.creates, CreateTable{})
	st := &p.a.creates[len(p.a.creates)-1]
	if ok, err := p.acceptKw(kwIf); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw(kwNot); err != nil {
			return nil, err
		}
		if err := p.expectKw(kwExists); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectSym('('); err != nil {
		return nil, err
	}
	start := len(p.a.tcols)
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var kind tuple.Kind
		switch {
		case p.isKw(kwInt) || p.isKw(kwInteger):
			kind = tuple.KindInt
		case p.isKw(kwStringT) || p.isKw(kwVarchar):
			kind = tuple.KindString
		default:
			return nil, p.errf("expected column type, found %s", p.tok.describe())
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		// Tolerate VARCHAR(n).
		if ok, err := p.acceptSym('('); err != nil {
			return nil, err
		} else if ok {
			if p.tok.kind != TokInt {
				return nil, p.errf("expected length, found %s", p.tok.describe())
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectSym(')'); err != nil {
				return nil, err
			}
		}
		p.a.tcols = append(p.a.tcols, tuple.Column{Name: col, Kind: kind})
		if ok, err := p.acceptSym(','); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectSym(')'); err != nil {
		return nil, err
	}
	end := len(p.a.tcols)
	st.Cols = p.a.tcols[start:end:end]
	return st, nil
}

func (p *Parser) parseDrop() (Stmt, error) {
	if err := p.next(); err != nil { // DROP
		return nil, err
	}
	if err := p.expectKw(kwTable); err != nil {
		return nil, err
	}
	p.a.drops = append(p.a.drops, DropTable{})
	st := &p.a.drops[len(p.a.drops)-1]
	if ok, err := p.acceptKw(kwIf); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw(kwExists); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	if err := p.next(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKw(kwFrom); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.a.deletes = append(p.a.deletes, DeleteAll{Name: name})
	return &p.a.deletes[len(p.a.deletes)-1], nil
}

func (p *Parser) parseInsert() (Stmt, error) {
	if err := p.next(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKw(kwInto); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.a.inserts = append(p.a.inserts, Insert{Table: name})
	st := &p.a.inserts[len(p.a.inserts)-1]
	if ok, err := p.acceptSym('('); err != nil {
		return nil, err
	} else if ok {
		start := len(p.a.names)
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			p.a.names = append(p.a.names, col)
			if ok, err := p.acceptSym(','); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectSym(')'); err != nil {
			return nil, err
		}
		end := len(p.a.names)
		st.Cols = p.a.names[start:end:end]
	}
	switch {
	case p.isKw(kwValues):
		if err := p.next(); err != nil {
			return nil, err
		}
		rowsStart := len(p.a.rows)
		for {
			if err := p.expectSym('('); err != nil {
				return nil, err
			}
			exprStart := len(p.a.exprs)
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				p.a.exprs = append(p.a.exprs, e)
				if ok, err := p.acceptSym(','); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if err := p.expectSym(')'); err != nil {
				return nil, err
			}
			exprEnd := len(p.a.exprs)
			p.a.rows = append(p.a.rows, p.a.exprs[exprStart:exprEnd:exprEnd])
			if ok, err := p.acceptSym(','); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		rowsEnd := len(p.a.rows)
		st.Rows = p.a.rows[rowsStart:rowsEnd:rowsEnd]
		return st, nil
	case p.isKw(kwSelect):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	default:
		return nil, p.errf("expected VALUES or SELECT, found %s", p.tok.describe())
	}
}

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.next(); err != nil { // SELECT
		return nil, err
	}
	p.a.selects = append(p.a.selects, Select{Limit: -1})
	sel := &p.a.selects[len(p.a.selects)-1]
	if ok, err := p.acceptKw(kwDistinct); err != nil {
		return nil, err
	} else if ok {
		sel.Distinct = true
	}
	// Select list.
	itemStart := len(p.a.items)
	for {
		if p.isSym('*') {
			// "SELECT *": a bare * at item head is a star item (qualified
			// refs are handled in parsePrimary).
			if err := p.next(); err != nil {
				return nil, err
			}
			p.a.items = append(p.a.items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if ok, err := p.acceptKw(kwAs); err != nil {
				return nil, err
			} else if ok {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.tok.kind == TokIdent {
				// Implicit alias: SELECT a b
				item.Alias = p.tok.text
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			p.a.items = append(p.a.items, item)
		}
		if ok, err := p.acceptSym(','); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	itemEnd := len(p.a.items)
	sel.Items = p.a.items[itemStart:itemEnd:itemEnd]
	if err := p.expectKw(kwFrom); err != nil {
		return nil, err
	}
	refStart := len(p.a.refs)
	for {
		tbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: tbl}
		if ok, err := p.acceptKw(kwAs); err != nil {
			return nil, err
		} else if ok {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		} else if p.tok.kind == TokIdent {
			ref.Alias = p.tok.text
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		p.a.refs = append(p.a.refs, ref)
		if ok, err := p.acceptSym(','); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	refEnd := len(p.a.refs)
	sel.From = p.a.refs[refStart:refEnd:refEnd]
	if ok, err := p.acceptKw(kwWhere); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if ok, err := p.acceptKw(kwGroup); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw(kwBy); err != nil {
			return nil, err
		}
		start := len(p.a.exprs)
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.a.exprs = append(p.a.exprs, e)
			if ok, err := p.acceptSym(','); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		end := len(p.a.exprs)
		sel.GroupBy = p.a.exprs[start:end:end]
	}
	if ok, err := p.acceptKw(kwHaving); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if ok, err := p.acceptKw(kwOrder); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw(kwBy); err != nil {
			return nil, err
		}
		start := len(p.a.orders)
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if ok, err := p.acceptKw(kwDesc); err != nil {
				return nil, err
			} else if ok {
				oi.Desc = true
			} else if ok, err := p.acceptKw(kwAsc); err != nil {
				return nil, err
			} else if ok { //nolint:staticcheck // explicit ASC accepted
			}
			p.a.orders = append(p.a.orders, oi)
			if ok, err := p.acceptSym(','); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		end := len(p.a.orders)
		sel.OrderBy = p.a.orders[start:end:end]
	}
	if ok, err := p.acceptKw(kwLimit); err != nil {
		return nil, err
	} else if ok {
		if p.tok.kind != TokInt {
			return nil, p.errf("expected integer after LIMIT, found %s", p.tok.describe())
		}
		if p.tok.intBad {
			return nil, p.errf("bad LIMIT value %q", p.tok.text)
		}
		sel.Limit = p.tok.ival
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// Expression precedence levels, loosest to tightest. The grammar matches the
// previous recursive-descent implementation exactly:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmp
//	cmp     := addExpr ((= | <> | < | <= | > | >=) addExpr)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := primary ((*|/) primary)*
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precPrimary
)

// binOp classifies the current token as a binary operator, returning its
// precedence level (0 when it is not an operator).
func (p *Parser) binOp() (BinaryOp, int) {
	switch p.tok.kind {
	case TokKeyword:
		switch p.tok.kw {
		case kwOr:
			return OpOr, precOr
		case kwAnd:
			return OpAnd, precAnd
		}
	case TokSymbol:
		switch p.tok.sym {
		case '=':
			return OpEq, precCmp
		case symNE:
			return OpNe, precCmp
		case '<':
			return OpLt, precCmp
		case symLE:
			return OpLe, precCmp
		case '>':
			return OpGt, precCmp
		case symGE:
			return OpGe, precCmp
		case '+':
			return OpAdd, precAdd
		case '-':
			return OpSub, precAdd
		case '*':
			return OpMul, precMul
		case '/':
			return OpDiv, precMul
		}
	}
	return "", 0
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseAtPrec(precOr) }

// parseAtPrec is a precedence climber equivalent to the layered grammar
// above: one operand plus a loop that consumes operators binding at least
// as tightly as min, instead of one recursion level per grammar rule.
//
// Two features of the layered grammar need explicit care. Prefix NOT sits
// between AND and comparison, so it is admitted only when min is loose
// enough to have reached the notExpr rule. And the comparison level is
// non-associative: in the layered form a second comparison operator falls
// through the or/and loops and surfaces as the caller's "unexpected"
// error. The climb reproduces that with cmpBarred — once anything at or
// below the comparison level has been reduced (OR, AND, a comparison, or
// a NOT head, all of which yield a node above the cmp rule), a following
// comparison operator ends the climb and is left for the caller.
func (p *Parser) parseAtPrec(min int) (Expr, error) {
	var l Expr
	cmpBarred := false
	if min <= precNot && p.isKw(kwNot) {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseAtPrec(precNot)
		if err != nil {
			return nil, err
		}
		l = p.a.newNot(e)
		cmpBarred = true
	} else {
		var err error
		l, err = p.parsePrimary()
		if err != nil {
			return nil, err
		}
	}
	for {
		op, prec := p.binOp()
		if prec < min || (prec == precCmp && cmpBarred) {
			return l, nil
		}
		if prec <= precCmp {
			cmpBarred = true
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		// A comparison's operands are addExprs in the layered grammar;
		// every other operator's right operand is the next-tighter level.
		rmin := prec + 1
		if prec == precCmp {
			rmin = precAdd
		}
		r, err := p.parseAtPrec(rmin)
		if err != nil {
			return nil, err
		}
		l = p.a.newBinary(op, l, r)
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == TokInt:
		if p.tok.intBad {
			return nil, p.errf("bad integer literal %q", p.tok.text)
		}
		v := p.tok.ival
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.a.newInt(v), nil

	case p.tok.kind == TokString:
		s := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.a.newString(s), nil

	case p.tok.kind == TokParam:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.a.newParam(name), nil

	case p.isSym('('):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(')'); err != nil {
			return nil, err
		}
		return e, nil

	case p.isSym('-'):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return p.a.newBinary(OpSub, p.a.newInt(0), e), nil

	case p.isKw(kwCount) || p.isKw(kwSum) || p.isKw(kwMin) || p.isKw(kwMax):
		fn := AggFunc(p.tok.text) // canonical constant, no copy
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectSym('('); err != nil {
			return nil, err
		}
		agg := p.a.newAgg(fn)
		if ok, err := p.acceptSym('*'); err != nil {
			return nil, err
		} else if ok {
			if fn != FuncCount {
				return nil, p.errf("%s(*) is not valid", fn)
			}
			agg.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			agg.Arg = arg
		}
		if err := p.expectSym(')'); err != nil {
			return nil, err
		}
		return agg, nil

	case p.tok.kind == TokIdent:
		name := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptSym('.'); err != nil {
			return nil, err
		} else if ok {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return p.a.newCol(name, col), nil
		}
		return p.a.newCol("", name), nil

	default:
		return nil, p.errf("expected expression, found %s", p.tok.describe())
	}
}
