package sqlparse

// This file preserves the pre-rewrite recursive-descent parser (map-based
// keyword lookup, per-token string materialization, heap-allocated AST
// nodes) as a test-only oracle. FuzzParseDiff pins the zero-allocation
// parser bit-identical to it on arbitrary inputs, and BenchmarkParse/legacy
// measures the speedup the rewrite delivers. The only intentional change
// from the historical code is EXPLAIN ANALYZE support, mirrored here so the
// differential target stays aligned with the new grammar.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"setm/internal/tuple"
)

var legacyKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "DROP": true, "DELETE": true, "AS": true,
	"INT": true, "INTEGER": true, "STRING": true, "VARCHAR": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "DISTINCT": true,
	"LIMIT": true, "IF": true, "EXISTS": true, "EXPLAIN": true,
}

type legacyLexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLegacyLexer(src string) *legacyLexer { return &legacyLexer{src: src, line: 1, col: 1} }

func (l *legacyLexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *legacyLexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *legacyLexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *legacyLexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func legacyIsIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func legacyIsIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *legacyLexer) next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case legacyIsIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && legacyIsIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if legacyKeywords[up] {
			tok.Kind = TokKeyword
			tok.Text = up
		} else {
			tok.Kind = TokIdent
			tok.Text = word
		}
		return tok, nil

	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
		tok.Kind = TokInt
		tok.Text = l.src[start:l.pos]
		return tok, nil

	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, fmt.Errorf("sql:%d:%d: unterminated string literal", tok.Line, tok.Col)
			}
			ch := l.advance()
			if ch == '\'' {
				if l.peek() == '\'' { // escaped quote
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TokString
		tok.Text = sb.String()
		return tok, nil

	case c == ':':
		l.advance()
		if !legacyIsIdentStart(l.peek()) {
			return tok, fmt.Errorf("sql:%d:%d: expected parameter name after ':'", tok.Line, tok.Col)
		}
		start := l.pos
		for l.pos < len(l.src) && legacyIsIdentPart(l.peek()) {
			l.advance()
		}
		tok.Kind = TokParam
		tok.Text = l.src[start:l.pos]
		return tok, nil

	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.advance()
			l.advance()
			tok.Kind = TokSymbol
			if two == "!=" {
				two = "<>"
			}
			tok.Text = two
			return tok, nil
		}
		switch c {
		case '(', ')', ',', ';', '*', '=', '<', '>', '.', '+', '-', '/':
			l.advance()
			tok.Kind = TokSymbol
			tok.Text = string(c)
			return tok, nil
		}
		return tok, fmt.Errorf("sql:%d:%d: unexpected character %q", tok.Line, tok.Col, c)
	}
}

type legacyParser struct {
	lex *legacyLexer
	tok Token
}

func legacyParse(src string) (Stmt, error) {
	p := &legacyParser{lex: newLegacyLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokSymbol && p.tok.Text == ";" {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after statement", p.tok)
	}
	return st, nil
}

func legacyParseScript(src string) ([]Stmt, error) {
	p := &legacyParser{lex: newLegacyLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.tok.Kind != TokEOF {
		if p.tok.Kind == TokSymbol && p.tok.Text == ";" {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (p *legacyParser) next() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *legacyParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql:%d:%d: %s", p.tok.Line, p.tok.Col, fmt.Sprintf(format, args...))
}

func (p *legacyParser) isKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *legacyParser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.next()
	}
	return false, nil
}

func (p *legacyParser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.tok)
	}
	return p.next()
}

func (p *legacyParser) isSymbol(s string) bool {
	return p.tok.Kind == TokSymbol && p.tok.Text == s
}

func (p *legacyParser) acceptSymbol(s string) (bool, error) {
	if p.isSymbol(s) {
		return true, p.next()
	}
	return false, nil
}

func (p *legacyParser) expectSymbol(s string) error {
	if !p.isSymbol(s) {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.next()
}

func (p *legacyParser) expectIdent() (string, error) {
	if p.tok.Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", p.tok)
	}
	name := p.tok.Text
	return name, p.next()
}

func (p *legacyParser) parseStmt() (Stmt, error) {
	switch {
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("EXPLAIN"):
		if err := p.next(); err != nil {
			return nil, err
		}
		analyze := false
		if p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, "ANALYZE") {
			analyze = true
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if !p.isKeyword("SELECT") {
			return nil, p.errf("expected SELECT after EXPLAIN, found %s", p.tok)
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Select: sel.(*Select), Analyze: analyze}, nil
	default:
		return nil, p.errf("expected statement, found %s", p.tok)
	}
}

func (p *legacyParser) parseCreate() (Stmt, error) {
	if err := p.next(); err != nil { // CREATE
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTable{}
	if ok, err := p.acceptKeyword("IF"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var kind tuple.Kind
		switch {
		case p.isKeyword("INT") || p.isKeyword("INTEGER"):
			kind = tuple.KindInt
		case p.isKeyword("STRING") || p.isKeyword("VARCHAR"):
			kind = tuple.KindString
		default:
			return nil, p.errf("expected column type, found %s", p.tok)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptSymbol("("); err != nil {
			return nil, err
		} else if ok {
			if p.tok.Kind != TokInt {
				return nil, p.errf("expected length, found %s", p.tok)
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		st.Cols = append(st.Cols, tuple.Column{Name: col, Kind: kind})
		if ok, err := p.acceptSymbol(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *legacyParser) parseDrop() (Stmt, error) {
	if err := p.next(); err != nil { // DROP
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTable{}
	if ok, err := p.acceptKeyword("IF"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *legacyParser) parseDelete() (Stmt, error) {
	if err := p.next(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DeleteAll{Name: name}, nil
}

func (p *legacyParser) parseInsert() (Stmt, error) {
	if err := p.next(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &Insert{Table: name}
	if ok, err := p.acceptSymbol("("); err != nil {
		return nil, err
	} else if ok {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.isKeyword("VALUES"):
		if err := p.next(); err != nil {
			return nil, err
		}
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if ok, err := p.acceptSymbol(","); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		return st, nil
	case p.isKeyword("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel.(*Select)
		return st, nil
	default:
		return nil, p.errf("expected VALUES or SELECT, found %s", p.tok)
	}
}

func (p *legacyParser) parseSelect() (Stmt, error) {
	if err := p.next(); err != nil { // SELECT
		return nil, err
	}
	sel := &Select{Limit: -1}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		sel.Distinct = true
	}
	for {
		if p.isSymbol("*") {
			if err := p.next(); err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if ok, err := p.acceptKeyword("AS"); err != nil {
				return nil, err
			} else if ok {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.tok.Kind == TokIdent {
				item.Alias = p.tok.Text
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			sel.Items = append(sel.Items, item)
		}
		if ok, err := p.acceptSymbol(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tbl, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: tbl}
		if ok, err := p.acceptKeyword("AS"); err != nil {
			return nil, err
		} else if ok {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		} else if p.tok.Kind == TokIdent {
			ref.Alias = p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		sel.From = append(sel.From, ref)
		if ok, err := p.acceptSymbol(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if ok, err := p.acceptKeyword("GROUP"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKeyword("HAVING"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if ok, err := p.acceptKeyword("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("DESC"); err != nil {
				return nil, err
			} else if ok {
				oi.Desc = true
			} else if ok, err := p.acceptKeyword("ASC"); err != nil {
				return nil, err
			} else if ok { //nolint:staticcheck // explicit ASC accepted
			}
			sel.OrderBy = append(sel.OrderBy, oi)
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if ok, err := p.acceptKeyword("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.Kind != TokInt {
			return nil, p.errf("expected integer after LIMIT, found %s", p.tok)
		}
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value %q", p.tok.Text)
		}
		sel.Limit = n
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

func (p *legacyParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *legacyParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *legacyParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *legacyParser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *legacyParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokSymbol {
		switch p.tok.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := BinaryOp(p.tok.Text)
			if err := p.next(); err != nil {
				return nil, err
			}
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *legacyParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokSymbol && (p.tok.Text == "+" || p.tok.Text == "-") {
		op := BinaryOp(p.tok.Text)
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *legacyParser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokSymbol && (p.tok.Text == "*" || p.tok.Text == "/") {
		op := BinaryOp(p.tok.Text)
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *legacyParser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokInt:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", p.tok.Text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &IntLit{Value: v}, nil

	case p.tok.Kind == TokString:
		s := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &StringLit{Value: s}, nil

	case p.tok.Kind == TokParam:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Param{Name: name}, nil

	case p.isSymbol("("):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.isSymbol("-"):
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpSub, L: &IntLit{Value: 0}, R: e}, nil

	case p.isKeyword("COUNT") || p.isKeyword("SUM") || p.isKeyword("MIN") || p.isKeyword("MAX"):
		fn := AggFunc(p.tok.Text)
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		agg := &AggExpr{Func: fn}
		if ok, err := p.acceptSymbol("*"); err != nil {
			return nil, err
		} else if ok {
			if fn != FuncCount {
				return nil, p.errf("%s(*) is not valid", fn)
			}
			agg.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			agg.Arg = arg
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return agg, nil

	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptSymbol("."); err != nil {
			return nil, err
		} else if ok {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil

	default:
		return nil, p.errf("expected expression, found %s", p.tok)
	}
}
