package sqlparse

import (
	"math/rand"
	"strings"
	"testing"

	"setm/internal/tuple"
)

func parseSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, st)
	}
	return sel
}

func TestTokenize(t *testing.T) {
	toks, err := Tokenize("SELECT r1.item, COUNT(*) FROM sales r1 -- comment\nWHERE x >= :minsupport")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Errorf("first token = %v", toks[0])
	}
	last := toks[len(toks)-2]
	if last.Kind != TokParam || last.Text != "minsupport" {
		t.Errorf("param token = %v", last)
	}
	_ = kinds
}

func TestTokenizeStringEscapes(t *testing.T) {
	toks, err := Tokenize("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "it's" {
		t.Errorf("string token = %v", toks[0])
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE sales (trans_id INT, item INT, note VARCHAR(10))")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "sales" || len(ct.Cols) != 3 {
		t.Fatalf("CreateTable = %+v", ct)
	}
	if ct.Cols[2].Kind != tuple.KindString {
		t.Errorf("note kind = %v", ct.Cols[2].Kind)
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	st, err := Parse("CREATE TABLE IF NOT EXISTS t (a INT)")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*CreateTable).IfNotExists {
		t.Error("IfNotExists not set")
	}
}

func TestParseDropAndDelete(t *testing.T) {
	st, err := Parse("DROP TABLE IF EXISTS r2")
	if err != nil {
		t.Fatal(err)
	}
	dt := st.(*DropTable)
	if dt.Name != "r2" || !dt.IfExists {
		t.Errorf("DropTable = %+v", dt)
	}
	st, err = Parse("DELETE FROM r2")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteAll).Name != "r2" {
		t.Errorf("DeleteAll = %+v", st)
	}
}

func TestParseInsertValues(t *testing.T) {
	st, err := Parse("INSERT INTO sales VALUES (10, 1), (10, 2), (20, 3)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Table != "sales" || len(ins.Rows) != 3 || len(ins.Rows[0]) != 2 {
		t.Fatalf("Insert = %+v", ins)
	}
	if ins.Rows[2][1].(*IntLit).Value != 3 {
		t.Errorf("last value = %v", ins.Rows[2][1])
	}
}

func TestParseInsertSelect(t *testing.T) {
	// The paper's C_k generation query, verbatim structure.
	src := `INSERT INTO c1
	        SELECT r1.item, COUNT(*)
	        FROM sales r1
	        GROUP BY r1.item
	        HAVING COUNT(*) >= :minsupport`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Select == nil {
		t.Fatal("INSERT ... SELECT did not capture query")
	}
	sel := ins.Select
	if len(sel.Items) != 2 {
		t.Fatalf("select items = %d", len(sel.Items))
	}
	if _, ok := sel.Items[1].Expr.(*AggExpr); !ok {
		t.Errorf("second item = %T", sel.Items[1].Expr)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("GROUP BY / HAVING missing")
	}
	hv := sel.Having.(*BinaryExpr)
	if hv.Op != OpGe {
		t.Errorf("having op = %v", hv.Op)
	}
	if _, ok := hv.R.(*Param); !ok {
		t.Errorf("having rhs = %T", hv.R)
	}
}

func TestParsePaperJoinQuery(t *testing.T) {
	// The SETM extension query from Section 4.1.
	src := `SELECT p.trans_id, p.item1, q.item
	        FROM r1 p, sales q
	        WHERE q.trans_id = p.trans_id AND q.item > p.item1
	        ORDER BY p.trans_id, p.item1, q.item`
	sel := parseSelect(t, src)
	if len(sel.From) != 2 {
		t.Fatalf("from = %+v", sel.From)
	}
	if sel.From[0].Binding() != "p" || sel.From[1].Binding() != "q" {
		t.Errorf("bindings = %s, %s", sel.From[0].Binding(), sel.From[1].Binding())
	}
	conj := SplitConjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if len(sel.OrderBy) != 3 {
		t.Errorf("order by = %d", len(sel.OrderBy))
	}
}

func TestParseSelfJoinWithInequality(t *testing.T) {
	// Pattern generation pair query from Section 2.
	src := `SELECT r1.trans_id, r1.item, r2.item
	        FROM sales r1, sales r2
	        WHERE r1.trans_id = r2.trans_id AND r1.item <> r2.item`
	sel := parseSelect(t, src)
	conj := SplitConjuncts(sel.Where)
	ne := conj[1].(*BinaryExpr)
	if ne.Op != OpNe {
		t.Errorf("op = %v", ne.Op)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %v", sel.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Errorf("AND should bind tighter than OR: %v", sel.Where)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT a + b * 2 FROM t")
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Error("* should bind tighter than +")
	}
}

func TestParenOverridesPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT (a + b) * 2 FROM t")
	mul := sel.Items[0].Expr.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("top op = %v", mul.Op)
	}
}

func TestAliasForms(t *testing.T) {
	sel := parseSelect(t, "SELECT x AS y, z w FROM t AS u")
	if sel.Items[0].Alias != "y" || sel.Items[1].Alias != "w" {
		t.Errorf("aliases = %+v", sel.Items)
	}
	if sel.From[0].Binding() != "u" {
		t.Errorf("table alias = %v", sel.From[0])
	}
}

func TestSelectStarDistinctLimit(t *testing.T) {
	sel := parseSelect(t, "SELECT DISTINCT * FROM t LIMIT 5")
	if !sel.Distinct || !sel.Items[0].Star || sel.Limit != 5 {
		t.Errorf("sel = %+v", sel)
	}
}

func TestOrderByDesc(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t ORDER BY a DESC, b ASC, c")
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc || sel.OrderBy[2].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
}

func TestNotAndNe(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE NOT a <> 1")
	if _, ok := sel.Where.(*NotExpr); !ok {
		t.Errorf("where = %T", sel.Where)
	}
	// != is normalized to <>
	sel2 := parseSelect(t, "SELECT a FROM t WHERE a != 1")
	if sel2.Where.(*BinaryExpr).Op != OpNe {
		t.Error("!= not normalized")
	}
}

func TestUnaryMinus(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a > -5")
	cmp := sel.Where.(*BinaryExpr)
	sub := cmp.R.(*BinaryExpr)
	if sub.Op != OpSub || sub.L.(*IntLit).Value != 0 || sub.R.(*IntLit).Value != 5 {
		t.Errorf("unary minus = %v", cmp.R)
	}
}

func TestParseScriptMultipleStatements(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t",
		"SELECT a FROM t WHERE",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t; garbage",
		"SELECT a FROM t WHERE a @ 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorsIncludePosition(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t WHERE ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "sql:2:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestExprStringRendering(t *testing.T) {
	sel := parseSelect(t, "SELECT COUNT(*) FROM t WHERE a.b >= :p AND c = 'x'")
	if got := sel.Items[0].Expr.String(); got != "COUNT(*)" {
		t.Errorf("agg string = %q", got)
	}
	ws := sel.Where.String()
	for _, want := range []string{"a.b", ":p", "'x'", ">="} {
		if !strings.Contains(ws, want) {
			t.Errorf("where string %q missing %q", ws, want)
		}
	}
}

func TestHasAggregateAndWalkColumns(t *testing.T) {
	sel := parseSelect(t, "SELECT COUNT(*) FROM t HAVING COUNT(*) >= 2")
	if !HasAggregate(sel.Having) {
		t.Error("HasAggregate(having) = false")
	}
	sel2 := parseSelect(t, "SELECT a FROM t WHERE a.x = b.y AND c > 1")
	var cols []string
	WalkColumns(sel2.Where, func(c *ColumnRef) { cols = append(cols, c.String()) })
	if len(cols) != 3 {
		t.Errorf("walked columns = %v", cols)
	}
}

func TestParseExplain(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*Explain)
	if !ok {
		t.Fatalf("Parse = %T, want *Explain", st)
	}
	if ex.Select == nil || len(ex.Select.Items) != 1 {
		t.Errorf("Explain.Select = %+v", ex.Select)
	}
	if _, err := Parse("EXPLAIN INSERT INTO t VALUES (1)"); err == nil {
		t.Error("EXPLAIN of non-SELECT accepted")
	}
}

// TestExprStringRoundTrip is a property test: rendering an expression with
// String() and re-parsing it yields a structurally identical tree (parens
// in String() make the rendering unambiguous).
func TestExprStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var gen func(depth int) Expr
	ops := []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpAdd, OpSub, OpMul, OpDiv}
	gen = func(depth int) Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(4) {
			case 0:
				return &IntLit{Value: rng.Int63n(1000)}
			case 1:
				return &ColumnRef{Name: string(rune('a' + rng.Intn(26)))}
			case 2:
				return &ColumnRef{Qualifier: "t", Name: string(rune('a' + rng.Intn(26)))}
			default:
				return &Param{Name: "p" + string(rune('0'+rng.Intn(10)))}
			}
		}
		// NOT is deliberately absent: the grammar only allows it at the
		// boolean level (NOT inside a comparison operand such as
		// "a < NOT b" is not parseable SQL), so String() of such a tree
		// would not round-trip. NOT round-trips are covered by
		// TestNotAndNe.
		return &BinaryExpr{
			Op: ops[rng.Intn(len(ops))],
			L:  gen(depth - 1),
			R:  gen(depth - 1),
		}
	}
	for trial := 0; trial < 200; trial++ {
		e := gen(4)
		src := "SELECT " + e.String() + " FROM t"
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", src, err)
		}
		got := st.(*Select).Items[0].Expr
		if got.String() != e.String() {
			t.Fatalf("round trip changed expression:\n  in:  %s\n  out: %s", e.String(), got.String())
		}
	}
}
