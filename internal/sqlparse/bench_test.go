package sqlparse

import (
	"testing"
)

// BenchmarkParse parses the paper's Figure-4 statement set per op. The
// "arena" variant reuses one parser (the pooled steady state the engine
// runs in — 0 allocs/op); "fresh" dedicates a parser per statement as the
// package-level Parse does; "legacy" is the pre-rewrite recursive-descent
// parser kept in legacy_test.go.
func BenchmarkParse(b *testing.B) {
	for _, seed := range figure4Seeds {
		if _, err := Parse(seed); err != nil {
			b.Fatalf("corpus statement does not parse: %v", err)
		}
	}
	b.Run("arena", func(b *testing.B) {
		p := NewParser()
		for _, src := range figure4Seeds { // warm the arena
			p.Reset(src)
			if _, err := p.ParseStatement(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, src := range figure4Seeds {
				p.Reset(src)
				if _, err := p.ParseStatement(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, src := range figure4Seeds {
				if _, err := Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, src := range figure4Seeds {
				if _, err := legacyParse(src); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTokenizeOnly isolates the scanner.
func BenchmarkTokenizeOnly(b *testing.B) {
	var sc scanner
	var t token
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, src := range figure4Seeds {
			sc.init(src)
			for {
				if err := sc.next(&t); err != nil {
					b.Fatal(err)
				}
				if t.kind == TokEOF {
					break
				}
			}
		}
	}
}

// TestParseSteadyStateZeroAllocs is the acceptance gate for the rewrite: a
// reused parser parses the whole Figure-4 statement set without allocating.
func TestParseSteadyStateZeroAllocs(t *testing.T) {
	p := NewParser()
	parseAll := func() {
		for _, src := range figure4Seeds {
			p.Reset(src)
			if _, err := p.ParseStatement(); err != nil {
				t.Fatal(err)
			}
		}
	}
	parseAll() // warm the arena to capacity
	if allocs := testing.AllocsPerRun(100, parseAll); allocs != 0 {
		t.Errorf("steady-state parse of Figure-4 set = %v allocs/run, want 0", allocs)
	}
}

// TestPooledParserReuse exercises the Acquire/Release cycle across
// goroutines under the race detector.
func TestPooledParserReuse(t *testing.T) {
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				p := AcquireParser()
				for _, src := range figure4Seeds {
					p.Reset(src)
					if _, err := p.ParseStatement(); err != nil {
						done <- err
						return
					}
				}
				ReleaseParser(p)
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
