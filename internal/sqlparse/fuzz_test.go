package sqlparse

import (
	"reflect"
	"testing"
)

// figure4Seeds is the paper's Figure-4 statement set as MineSQL issues it
// (k=2 shown): the C_1 count query, the R'_k extension join, the C_k
// count+filter, and the R_k materialization, plus the surrounding DDL.
var figure4Seeds = []string{
	`SELECT s.item, COUNT(*) FROM sales s GROUP BY s.item HAVING COUNT(*) >= :minsupport`,
	`CREATE TABLE rp2 (trans_id INT, item1 INT, item2 INT)`,
	`INSERT INTO rp2
	 SELECT p.trans_id, p.item1, q.item
	 FROM r1 p, sales q
	 WHERE q.trans_id = p.trans_id AND q.item > p.item1
	 ORDER BY p.trans_id, p.item1, q.item`,
	`CREATE TABLE c2 (item1 INT, item2 INT, cnt INT)`,
	`INSERT INTO c2
	 SELECT p.item1, p.item2, COUNT(*)
	 FROM rp2 p
	 GROUP BY p.item1, p.item2
	 HAVING COUNT(*) >= :minsupport`,
	`CREATE TABLE r2 (trans_id INT, item1 INT, item2 INT)`,
	`INSERT INTO r2
	 SELECT p.trans_id, p.item1, p.item2
	 FROM rp2 p, c2 c
	 WHERE p.item1 = c.item1 AND p.item2 = c.item2
	 ORDER BY p.trans_id, p.item1, p.item2`,
	`SELECT item1, item2, cnt FROM c2 ORDER BY item1, item2`,
	`DROP TABLE IF EXISTS rp2`,
}

func addSharedSeeds(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM sales",
		"SELECT s.item, COUNT(*) FROM sales s GROUP BY s.item HAVING COUNT(*) >= :minsupport",
		"SELECT p.trans_id, p.item1, q.item FROM r1 p, sales q WHERE q.trans_id = p.trans_id AND q.item > p.item1",
		"INSERT INTO c1 SELECT r1.item, COUNT(*) FROM sales r1 GROUP BY r1.item",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y''z')",
		"CREATE TABLE IF NOT EXISTS r2 (trans_id INT, item1 INT, item2 INT)",
		"CREATE TABLE t (name VARCHAR(10), n INTEGER)",
		"DROP TABLE IF EXISTS r2",
		"DELETE FROM r2",
		"EXPLAIN SELECT a FROM t ORDER BY a DESC, b LIMIT 3",
		"EXPLAIN ANALYZE SELECT a, COUNT(*) FROM t GROUP BY a",
		"SELECT DISTINCT a AS x, 1 + 2 * 3 FROM t WHERE NOT a < -5 OR b <> 0;",
		"SELECT MIN(a), MAX(b), SUM(a + b) FROM t -- comment",
		"SELECT a -- trailing comment\nFROM t -- another\nWHERE a > 1",
		"-- leading comment\n-- more\nSELECT a FROM t",
		"SELECT a\nFROM t\nWHERE a = 'multi\nline string'",
	} {
		f.Add(seed)
	}
	for _, seed := range figure4Seeds {
		f.Add(seed)
	}
}

// FuzzParse asserts two properties on arbitrary input:
//
//  1. the parser never panics — it either returns an AST or an error;
//  2. accepted statements round-trip: Print renders an AST back to SQL
//     that re-parses to an equal AST.
func FuzzParse(f *testing.F) {
	addSharedSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(st)
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\noriginal: %q\nprinted:  %q", err, src, printed)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round-trip AST mismatch\noriginal: %q\nprinted:  %q\nast1: %#v\nast2: %#v", src, printed, st, st2)
		}
	})
}

// FuzzParseDiff pins the zero-allocation parser bit-identical to the
// pre-rewrite recursive-descent parser (legacy_test.go): on every input the
// two either both fail or both succeed with DeepEqual ASTs and identical
// canonical renderings. Error positions are pinned too, since both parsers
// format them into the message.
func FuzzParseDiff(f *testing.F) {
	addSharedSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		stNew, errNew := Parse(src)
		stOld, errOld := legacyParse(src)
		if (errNew == nil) != (errOld == nil) {
			t.Fatalf("accept/reject mismatch on %q\nnew: %v\nold: %v", src, errNew, errOld)
		}
		if errNew != nil {
			if errNew.Error() != errOld.Error() {
				t.Fatalf("error mismatch on %q\nnew: %v\nold: %v", src, errNew, errOld)
			}
			return
		}
		if !reflect.DeepEqual(stNew, stOld) {
			t.Fatalf("AST mismatch on %q\nnew: %#v\nold: %#v", src, stNew, stOld)
		}
		if pn, po := Print(stNew), Print(stOld); pn != po {
			t.Fatalf("print mismatch on %q\nnew: %q\nold: %q", src, pn, po)
		}

		// Scripts must agree too (a single statement is also a script).
		ssNew, serrNew := ParseScript(src)
		ssOld, serrOld := legacyParseScript(src)
		if (serrNew == nil) != (serrOld == nil) {
			t.Fatalf("script accept/reject mismatch on %q\nnew: %v\nold: %v", src, serrNew, serrOld)
		}
		if serrNew == nil && !reflect.DeepEqual(ssNew, ssOld) {
			t.Fatalf("script AST mismatch on %q\nnew: %#v\nold: %#v", src, ssNew, ssOld)
		}
	})
}

// FuzzParseScript asserts the script splitter never panics and accepts
// every statement sequence the single-statement parser accepts.
func FuzzParseScript(f *testing.F) {
	f.Add("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	f.Add(";;;")
	f.Add("SELECT 1 FROM t")
	f.Add("-- setup\nCREATE TABLE t (a INT);\n-- load\nINSERT INTO t VALUES (1);\nSELECT a FROM t;")
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseScript(src)
		if err != nil {
			return
		}
		for _, st := range stmts {
			if st == nil {
				t.Fatal("ParseScript returned a nil statement")
			}
		}
	})
}
