package sqlparse

import (
	"reflect"
	"testing"
)

// FuzzParse asserts two properties on arbitrary input:
//
//  1. the parser never panics — it either returns an AST or an error;
//  2. accepted statements round-trip: Print renders an AST back to SQL
//     that re-parses to an equal AST.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM sales",
		"SELECT s.item, COUNT(*) FROM sales s GROUP BY s.item HAVING COUNT(*) >= :minsupport",
		"SELECT p.trans_id, p.item1, q.item FROM r1 p, sales q WHERE q.trans_id = p.trans_id AND q.item > p.item1",
		"INSERT INTO c1 SELECT r1.item, COUNT(*) FROM sales r1 GROUP BY r1.item",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y''z')",
		"CREATE TABLE IF NOT EXISTS r2 (trans_id INT, item1 INT, item2 INT)",
		"CREATE TABLE t (name VARCHAR(10), n INTEGER)",
		"DROP TABLE IF EXISTS r2",
		"DELETE FROM r2",
		"EXPLAIN SELECT a FROM t ORDER BY a DESC, b LIMIT 3",
		"SELECT DISTINCT a AS x, 1 + 2 * 3 FROM t WHERE NOT a < -5 OR b <> 0;",
		"SELECT MIN(a), MAX(b), SUM(a + b) FROM t -- comment",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(st)
		st2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\noriginal: %q\nprinted:  %q", err, src, printed)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round-trip AST mismatch\noriginal: %q\nprinted:  %q\nast1: %#v\nast2: %#v", src, printed, st, st2)
		}
	})
}

// FuzzParseScript asserts the script splitter never panics and accepts
// every statement sequence the single-statement parser accepts.
func FuzzParseScript(f *testing.F) {
	f.Add("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	f.Add(";;;")
	f.Add("SELECT 1 FROM t")
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseScript(src)
		if err != nil {
			return
		}
		for _, st := range stmts {
			if st == nil {
				t.Fatal("ParseScript returned a nil statement")
			}
		}
	})
}
