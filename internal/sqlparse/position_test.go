package sqlparse

import (
	"strings"
	"testing"
)

// TestErrorPositionsThroughComments pins exact 1-based line/col on errors
// behind comments and multi-line input: the byte-scan lexer must track
// positions identically to the character-walking one it replaced.
func TestErrorPositionsThroughComments(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // required "sql:line:col:" prefix of the error
	}{
		{
			name: "error after line comment",
			src:  "SELECT a -- projected column\nFROM t WHERE ?",
			want: "sql:2:14:",
		},
		{
			name: "error after several comment-only lines",
			src:  "-- first\n-- second\n-- third\nSELECT @ FROM t",
			want: "sql:4:8:",
		},
		{
			name: "unterminated string reports opening quote",
			src:  "SELECT a FROM t\nWHERE b = 'oops",
			want: "sql:2:11:",
		},
		{
			name: "multi-line string literal advances line count",
			src:  "SELECT 'a\nb\nc' FROM t WHERE ?",
			want: "sql:3:17:",
		},
		{
			name: "bare colon",
			src:  "SELECT a FROM t WHERE b = :",
			want: "sql:1:27:",
		},
		{
			name: "tab counts one column",
			src:  "\t\tSELECT ~ FROM t",
			want: "sql:1:10:",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
			if !strings.HasPrefix(err.Error(), tc.want) {
				t.Errorf("Parse(%q) error = %q, want prefix %q", tc.src, err, tc.want)
			}
		})
	}
}

// TestErrorPositionDeepInScript pins line/col on an error deep inside a
// multi-statement ParseScript body, with comments interleaved between and
// inside statements.
func TestErrorPositionDeepInScript(t *testing.T) {
	src := strings.Join([]string{
		"-- SETM pipeline, iteration k=2",       // line 1
		"CREATE TABLE rp2 (trans_id INT,",       // line 2
		"                  item1 INT,",          // line 3
		"                  item2 INT);",         // line 4
		"",                                      // line 5
		"INSERT INTO rp2 -- extension join",     // line 6
		"SELECT p.trans_id, p.item1, q.item",    // line 7
		"FROM r1 p, sales q",                    // line 8
		"WHERE q.trans_id = p.trans_id",         // line 9
		"  AND q.item > p.item1",                // line 10
		"ORDER BY p.trans_id, p.item1, q.item;", // line 11
		"",                                      // line 12
		"SELECT item1, cnt FROM c2",             // line 13
		"WHERE cnt >= 10 AND",                   // line 14
		"      cnt <= ;",                        // line 15: expression missing
	}, "\n")
	_, err := ParseScript(src)
	if err == nil {
		t.Fatal("ParseScript succeeded, want error")
	}
	const want = "sql:15:14:"
	if !strings.HasPrefix(err.Error(), want) {
		t.Errorf("ParseScript error = %q, want prefix %q", err, want)
	}

	// The same script without the broken tail parses, and its token
	// positions survive the comments: probe the last statement's text.
	good := strings.Replace(src, "cnt <= ;", "cnt <= 99;", 1)
	stmts, err := ParseScript(good)
	if err != nil {
		t.Fatalf("ParseScript(good): %v", err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements, want 3", len(stmts))
	}
}

// TestTokenPositionsMultiLine pins token line/col across comments, blank
// lines, and operators.
func TestTokenPositionsMultiLine(t *testing.T) {
	toks, err := Tokenize("SELECT a -- c\n\n  FROM t\nWHERE a >= :p")
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		text string
		line int
		col  int
	}{
		{"SELECT", 1, 1},
		{"a", 1, 8},
		{"FROM", 3, 3},
		{"t", 3, 8},
		{"WHERE", 4, 1},
		{"a", 4, 7},
		{">=", 4, 9},
		{"p", 4, 12},
	}
	if len(toks) != len(wants)+1 { // +1 for EOF
		t.Fatalf("token count = %d, want %d", len(toks), len(wants)+1)
	}
	for i, w := range wants {
		if toks[i].Text != w.text || toks[i].Line != w.line || toks[i].Col != w.col {
			t.Errorf("token %d = %q @%d:%d, want %q @%d:%d",
				i, toks[i].Text, toks[i].Line, toks[i].Col, w.text, w.line, w.col)
		}
	}
}
