// Package sqlparse implements the lexer, AST, and parser for the SQL subset
// the paper's queries use: CREATE/DROP TABLE, INSERT (VALUES and INSERT ...
// SELECT), DELETE, and SELECT with joins, WHERE, GROUP BY, HAVING, ORDER BY,
// COUNT(*), named parameters (:minsupport), and EXPLAIN [ANALYZE].
//
// The front end is allocation-free on the hot path: the scanner walks the
// source string byte by byte, token text is a substring sharing the source's
// backing array, keywords are matched case-insensitively against a
// length-bucketed table (no ToUpper, no map), and the parser allocates AST
// nodes from a per-parser arena that Reset recycles. Steady-state parsing of
// the paper's Figure-4 statement set runs at 0 allocs/op.
package sqlparse

import (
	"fmt"
	"math"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokString
	TokParam  // :name
	TokSymbol // punctuation and operators
)

// Token is one lexical token with its source position (1-based line/col).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// kwID identifies a keyword. Matching a word yields an ID so the parser
// compares small integers instead of strings.
type kwID uint8

const (
	kwNone kwID = iota
	kwSelect
	kwFrom
	kwWhere
	kwGroup
	kwBy
	kwHaving
	kwOrder
	kwAsc
	kwDesc
	kwAnd
	kwOr
	kwNot
	kwInsert
	kwInto
	kwValues
	kwCreate
	kwTable
	kwDrop
	kwDelete
	kwAs
	kwInt
	kwInteger
	kwStringT
	kwVarchar
	kwCount
	kwSum
	kwMin
	kwMax
	kwDistinct
	kwLimit
	kwIf
	kwExists
	kwExplain
	numKeywords
)

// kwNames holds each keyword's canonical upper-case spelling; token text for
// keywords aliases these constants, so no per-token string is built.
var kwNames = [numKeywords]string{
	kwSelect: "SELECT", kwFrom: "FROM", kwWhere: "WHERE", kwGroup: "GROUP",
	kwBy: "BY", kwHaving: "HAVING", kwOrder: "ORDER", kwAsc: "ASC",
	kwDesc: "DESC", kwAnd: "AND", kwOr: "OR", kwNot: "NOT",
	kwInsert: "INSERT", kwInto: "INTO", kwValues: "VALUES",
	kwCreate: "CREATE", kwTable: "TABLE", kwDrop: "DROP", kwDelete: "DELETE",
	kwAs: "AS", kwInt: "INT", kwInteger: "INTEGER", kwStringT: "STRING",
	kwVarchar: "VARCHAR", kwCount: "COUNT", kwSum: "SUM", kwMin: "MIN",
	kwMax: "MAX", kwDistinct: "DISTINCT", kwLimit: "LIMIT", kwIf: "IF",
	kwExists: "EXISTS", kwExplain: "EXPLAIN",
}

// maxKeywordLen bounds the length buckets below.
const maxKeywordLen = 8

// kwIndex buckets keyword IDs by (spelling length, first letter) so a
// candidate word is compared against at most two same-shape keywords, and
// kwPacked holds each keyword's bytes packed into a uint64 (all keywords are
// at most 8 bytes) so that comparison is a single integer equality.
var (
	kwIndex  [maxKeywordLen + 1][26][]kwID
	kwPacked [numKeywords]uint64
	// kwMask[n] has bit (c0-'A') set iff some keyword of length n starts
	// with letter c0 — a one-load rejection test for most identifiers.
	kwMask [maxKeywordLen + 1]uint32
)

// Byte classification tables. They reproduce the previous lexer's semantics
// exactly: a byte is an identifier character iff unicode.IsLetter /
// unicode.IsDigit said so for the byte interpreted as a rune (which admits
// Latin-1 letters), precomputed so the scan is a table lookup per byte.
// classTab dispatches the first byte of a token to its scan routine in one
// load.
const (
	clsBad   = iota // no token starts with this byte
	clsIdent        // identifier or keyword start
	clsDigit        // integer literal
	clsQuote        // ' string literal
	clsColon        // :parameter
	clsSym2         // < > ! — may start a two-character operator
	clsSym1         // single-character symbol
)

var (
	identStartTab [256]bool
	identPartTab  [256]bool
	digitTab      [256]bool
	classTab      [256]uint8
)

func init() {
	for i := 1; i < len(kwNames); i++ {
		n := len(kwNames[i])
		c0 := kwNames[i][0] - 'A'
		kwIndex[n][c0] = append(kwIndex[n][c0], kwID(i))
		kwMask[n] |= 1 << c0
		var v uint64
		for j := 0; j < n; j++ {
			v = v<<8 | uint64(kwNames[i][j])
		}
		kwPacked[i] = v
	}
	for i := 0; i < 256; i++ {
		r := rune(i)
		identStartTab[i] = i == '_' || unicode.IsLetter(r)
		identPartTab[i] = i == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
		digitTab[i] = unicode.IsDigit(r)
		switch {
		case identStartTab[i]:
			classTab[i] = clsIdent
		case digitTab[i]:
			classTab[i] = clsDigit
		case i == '\'':
			classTab[i] = clsQuote
		case i == ':':
			classTab[i] = clsColon
		case i == '<' || i == '>' || i == '!':
			classTab[i] = clsSym2
		default:
			classTab[i] = clsBad
		}
	}
	for _, c := range "(),;*=.+-/" {
		classTab[c] = clsSym1
	}
}

// lookupKeyword matches word case-insensitively against the keyword table,
// returning kwNone for non-keywords. No allocation, no map access. Keywords
// are pure A-Z, so folding a candidate byte with &^0x20 matches exactly the
// two case variants of each keyword letter and nothing else.
func lookupKeyword(word string) kwID {
	n := len(word)
	if n < 2 || n > maxKeywordLen {
		return kwNone
	}
	c0 := word[0] &^ 0x20
	if c0 < 'A' || c0 > 'Z' || kwMask[n]>>(c0-'A')&1 == 0 {
		return kwNone
	}
	bucket := kwIndex[n][c0-'A']
	v := uint64(c0)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(word[i]&^0x20)
	}
	for _, id := range bucket {
		if kwPacked[id] == v {
			return id
		}
	}
	return kwNone
}

// tokErr is an internal sentinel kind: the parser prescans the whole input
// into a token slab, and a scan failure is recorded as a tokErr token at the
// point of failure so the error surfaces only if parsing actually reaches
// it — identical semantics to lexing lazily.
const tokErr TokenKind = -1

// Two-character operators get synthetic symbol codes outside the ASCII
// range; single-character symbols use the character itself.
const (
	symLE byte = 0x80 // <=
	symGE byte = 0x81 // >=
	symNE byte = 0x82 // <> (and !=, normalized)
)

// token is the scanner's internal token: text borrows the source (or a
// canonical keyword constant), so producing one never allocates. String
// literals containing doubled-quote escapes are the one exception. Fields
// beyond kind, line, and col are only meaningful for the kinds that set
// them: symbol
// tokens carry sym (their text is derived on demand), int tokens carry
// ival/intBad, and so on.
type token struct {
	kind   TokenKind
	kw     kwID   // valid when kind == TokKeyword
	sym    byte   // valid when kind == TokSymbol
	intBad bool   // TokInt: literal does not fit in int64
	ival   int64  // valid when kind == TokInt
	text   string // valid for ident/keyword/int/string/param
	line   int
	col    int
}

// describe renders the token for error messages, mirroring Token.String.
func (t *token) describe() string {
	switch t.kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return "'" + t.text + "'"
	case TokSymbol:
		return symString(t.sym)
	default:
		return t.text
	}
}

// scanner is the zero-allocation lexer core.
type scanner struct {
	src       string
	pos       int
	line      int    // 1-based
	lineStart int    // byte offset where the current line begins
	buf       []byte // scratch for unescaping string literals
}

func (s *scanner) init(src string) {
	s.src = src
	s.pos = 0
	s.line = 1
	s.lineStart = 0
}

// next scans one token into t. After the input is exhausted it yields TokEOF
// forever. Position state lives in locals through the whitespace/comment
// skip so the byte loops are register-resident.
func (s *scanner) next(t *token) error {
	src := s.src
	pos := s.pos
	line := s.line
	lineStart := s.lineStart
skip:
	for pos < len(src) {
		switch src[pos] {
		case ' ', '\t', '\r':
			pos++
		case '\n':
			pos++
			line++
			lineStart = pos
		case '-':
			if pos+1 < len(src) && src[pos+1] == '-' {
				for pos < len(src) && src[pos] != '\n' {
					pos++
				}
				continue
			}
			break skip
		default:
			break skip
		}
	}
	s.pos = pos
	s.line = line
	s.lineStart = lineStart
	t.line = line
	t.col = pos - lineStart + 1
	if pos >= len(src) {
		t.kind = TokEOF
		return nil
	}
	c := src[pos]
	switch classTab[c] {
	case clsIdent:
		start := pos
		pos++
		for pos < len(src) && identPartTab[src[pos]] {
			pos++
		}
		s.pos = pos
		word := src[start:pos]
		if id := lookupKeyword(word); id != kwNone {
			t.kind = TokKeyword
			t.kw = id
			t.text = kwNames[id]
		} else {
			t.kind = TokIdent
			t.text = word
		}
		return nil

	case clsDigit:
		start := pos
		var v int64
		bad := false
		for pos < len(src) && digitTab[src[pos]] {
			d := int64(src[pos] - '0')
			if v > (math.MaxInt64-d)/10 {
				bad = true // keep consuming; the parser reports the error
			} else {
				v = v*10 + d
			}
			pos++
		}
		s.pos = pos
		t.kind = TokInt
		t.text = src[start:pos]
		t.ival = v
		t.intBad = bad
		return nil

	case clsQuote:
		start := pos + 1
		i := start
		escaped := false
		for {
			if i >= len(src) {
				return fmt.Errorf("sql:%d:%d: unterminated string literal", t.line, t.col)
			}
			ch := src[i]
			if ch == '\'' {
				if i+1 < len(src) && src[i+1] == '\'' {
					escaped = true
					i += 2
					continue
				}
				break
			}
			if ch == '\n' {
				s.line++
				s.lineStart = i + 1
			}
			i++
		}
		t.kind = TokString
		if !escaped {
			t.text = src[start:i]
		} else {
			buf := s.buf[:0]
			for j := start; j < i; j++ {
				ch := src[j]
				buf = append(buf, ch)
				if ch == '\'' {
					j++ // skip the doubled quote
				}
			}
			s.buf = buf
			t.text = string(buf)
		}
		s.pos = i + 1
		return nil

	case clsColon:
		pos++
		if pos >= len(src) || !identStartTab[src[pos]] {
			return fmt.Errorf("sql:%d:%d: expected parameter name after ':'", t.line, t.col)
		}
		start := pos
		for pos < len(src) && identPartTab[src[pos]] {
			pos++
		}
		s.pos = pos
		t.kind = TokParam
		t.text = src[start:pos]
		return nil

	case clsSym2:
		if pos+1 < len(src) {
			c2 := src[pos+1]
			var sym byte
			switch {
			case c == '<' && c2 == '>':
				sym = symNE
			case c == '!' && c2 == '=':
				sym = symNE // normalized to <>
			case c == '<' && c2 == '=':
				sym = symLE
			case c == '>' && c2 == '=':
				sym = symGE
			}
			if sym != 0 {
				s.pos = pos + 2
				t.kind = TokSymbol
				t.sym = sym
				return nil
			}
		}
		if c == '!' { // bare ! is not a symbol
			return fmt.Errorf("sql:%d:%d: unexpected character %q", t.line, t.col, c)
		}
		t.kind = TokSymbol
		t.sym = c
		s.pos = pos + 1
		return nil

	case clsSym1:
		t.kind = TokSymbol
		t.sym = c
		s.pos = pos + 1
		return nil

	default:
		return fmt.Errorf("sql:%d:%d: unexpected character %q", t.line, t.col, c)
	}
}

// Lexer is the public token-stream view over the scanner, kept for tests and
// diagnostics.
type Lexer struct {
	s scanner
	t token
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	l := &Lexer{}
	l.s.init(src)
	return l
}

// Next returns the next token. After the input is exhausted it returns
// TokEOF forever.
func (l *Lexer) Next() (Token, error) {
	if err := l.s.next(&l.t); err != nil {
		return Token{Line: l.t.line, Col: l.t.col}, err
	}
	text := l.t.text
	if l.t.kind == TokSymbol {
		text = symString(l.t.sym)
	} else if l.t.kind == TokEOF {
		text = ""
	}
	return Token{Kind: l.t.kind, Text: text, Line: l.t.line, Col: l.t.col}, nil
}

// Tokenize lexes the whole input (for tests and diagnostics).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
