// Package sqlparse implements the lexer, AST, and recursive-descent parser
// for the SQL subset the paper's queries use: CREATE/DROP TABLE, INSERT
// (VALUES and INSERT ... SELECT), DELETE, and SELECT with joins, WHERE,
// GROUP BY, HAVING, ORDER BY, COUNT(*), and named parameters (:minsupport).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokString
	TokParam  // :name
	TokSymbol // punctuation and operators
)

// Token is one lexical token with its source position (1-based line/col).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "DROP": true, "DELETE": true, "AS": true,
	"INT": true, "INTEGER": true, "STRING": true, "VARCHAR": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "DISTINCT": true,
	"LIMIT": true, "IF": true, "EXISTS": true, "EXPLAIN": true,
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token. After the input is exhausted it returns
// TokEOF forever.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			tok.Kind = TokKeyword
			tok.Text = up
		} else {
			tok.Kind = TokIdent
			tok.Text = word
		}
		return tok, nil

	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
		tok.Kind = TokInt
		tok.Text = l.src[start:l.pos]
		return tok, nil

	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, fmt.Errorf("sql:%d:%d: unterminated string literal", tok.Line, tok.Col)
			}
			ch := l.advance()
			if ch == '\'' {
				if l.peek() == '\'' { // escaped quote
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TokString
		tok.Text = sb.String()
		return tok, nil

	case c == ':':
		l.advance()
		if !isIdentStart(l.peek()) {
			return tok, fmt.Errorf("sql:%d:%d: expected parameter name after ':'", tok.Line, tok.Col)
		}
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		tok.Kind = TokParam
		tok.Text = l.src[start:l.pos]
		return tok, nil

	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.advance()
			l.advance()
			tok.Kind = TokSymbol
			if two == "!=" {
				two = "<>"
			}
			tok.Text = two
			return tok, nil
		}
		switch c {
		case '(', ')', ',', ';', '*', '=', '<', '>', '.', '+', '-', '/':
			l.advance()
			tok.Kind = TokSymbol
			tok.Text = string(c)
			return tok, nil
		}
		return tok, fmt.Errorf("sql:%d:%d: unexpected character %q", tok.Line, tok.Col, c)
	}
}

// Tokenize lexes the whole input (for tests and diagnostics).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
