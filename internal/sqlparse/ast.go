package sqlparse

import (
	"fmt"
	"strings"

	"setm/internal/tuple"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Cols        []tuple.Column
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// DeleteAll is DELETE FROM name (unqualified truncation; the paper's loop
// recreates worktables each iteration).
type DeleteAll struct {
	Name string
}

// Insert is INSERT INTO name [(cols)] VALUES (...),... or INSERT INTO name
// [(cols)] SELECT ....
type Insert struct {
	Table  string
	Cols   []string // optional explicit column list
	Rows   [][]Expr // VALUES form
	Select *Select  // INSERT ... SELECT form
}

// Select is a SELECT query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = no limit
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// TableRef names a table in FROM with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding returns the name the table is referenced by: alias if given.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Explain is EXPLAIN [ANALYZE] SELECT ...: return the plan instead of the
// query results. With Analyze set the statement is also executed and each
// plan operator reports actual vs estimated rows.
type Explain struct {
	Select  *Select
	Analyze bool
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*DeleteAll) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Explain) stmt()     {}

// Expr is any SQL expression.
type Expr interface {
	expr()
	// String renders the expression roughly as written, used in error
	// messages and as default output column names.
	String() string
}

// ColumnRef is [qualifier.]name.
type ColumnRef struct {
	Qualifier string // table alias; empty if unqualified
	Name      string
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
}

// StringLit is a string literal.
type StringLit struct {
	Value string
}

// Param is a named parameter :name.
type Param struct {
	Name string
}

// AggFunc enumerates aggregate function names.
type AggFunc string

// Aggregate function names.
const (
	FuncCount AggFunc = "COUNT"
	FuncSum   AggFunc = "SUM"
	FuncMin   AggFunc = "MIN"
	FuncMax   AggFunc = "MAX"
)

// AggExpr is COUNT(*) or SUM/MIN/MAX(col).
type AggExpr struct {
	Func AggFunc
	Star bool // COUNT(*)
	Arg  Expr // nil when Star
}

// BinaryOp enumerates binary operators.
type BinaryOp string

// Binary operators.
const (
	OpEq  BinaryOp = "="
	OpNe  BinaryOp = "<>"
	OpLt  BinaryOp = "<"
	OpLe  BinaryOp = "<="
	OpGt  BinaryOp = ">"
	OpGe  BinaryOp = ">="
	OpAnd BinaryOp = "AND"
	OpOr  BinaryOp = "OR"
	OpAdd BinaryOp = "+"
	OpSub BinaryOp = "-"
	OpMul BinaryOp = "*"
	OpDiv BinaryOp = "/"
)

// BinaryExpr applies Op to L and R.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	E Expr
}

func (*ColumnRef) expr()  {}
func (*IntLit) expr()     {}
func (*StringLit) expr()  {}
func (*Param) expr()      {}
func (*AggExpr) expr()    {}
func (*BinaryExpr) expr() {}
func (*NotExpr) expr()    {}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

func (i *IntLit) String() string    { return fmt.Sprintf("%d", i.Value) }
func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'" }
func (p *Param) String() string     { return ":" + p.Name }

func (a *AggExpr) String() string {
	if a.Star {
		return string(a.Func) + "(*)"
	}
	return string(a.Func) + "(" + a.Arg.String() + ")"
}

func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

func (n *NotExpr) String() string { return "NOT " + n.E.String() }

// SplitConjuncts flattens a predicate into its AND-ed conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// WalkColumns calls fn for every column reference in e.
func WalkColumns(e Expr, fn func(*ColumnRef)) {
	switch v := e.(type) {
	case *ColumnRef:
		fn(v)
	case *BinaryExpr:
		WalkColumns(v.L, fn)
		WalkColumns(v.R, fn)
	case *NotExpr:
		WalkColumns(v.E, fn)
	case *AggExpr:
		if v.Arg != nil {
			WalkColumns(v.Arg, fn)
		}
	}
}

// HasAggregate reports whether e contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *AggExpr:
			found = true
		case *BinaryExpr:
			walk(v.L)
			walk(v.R)
		case *NotExpr:
			walk(v.E)
		}
	}
	walk(e)
	return found
}
