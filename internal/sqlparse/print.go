package sqlparse

import (
	"fmt"
	"strings"

	"setm/internal/tuple"
)

// Print renders a parsed statement back to SQL text. The output is
// canonical (expressions fully parenthesized, explicit AS on aliases) and
// re-parses to an AST equal to the one printed — the round-trip property
// FuzzParse exercises.
func Print(st Stmt) string {
	var sb strings.Builder
	printStmt(&sb, st)
	return sb.String()
}

func printStmt(sb *strings.Builder, st Stmt) {
	switch s := st.(type) {
	case *CreateTable:
		sb.WriteString("CREATE TABLE ")
		if s.IfNotExists {
			sb.WriteString("IF NOT EXISTS ")
		}
		sb.WriteString(s.Name)
		sb.WriteString(" (")
		for i, c := range s.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			if c.Kind == tuple.KindString {
				sb.WriteString(" STRING")
			} else {
				sb.WriteString(" INT")
			}
		}
		sb.WriteString(")")

	case *DropTable:
		sb.WriteString("DROP TABLE ")
		if s.IfExists {
			sb.WriteString("IF EXISTS ")
		}
		sb.WriteString(s.Name)

	case *DeleteAll:
		sb.WriteString("DELETE FROM ")
		sb.WriteString(s.Name)

	case *Insert:
		sb.WriteString("INSERT INTO ")
		sb.WriteString(s.Table)
		if len(s.Cols) > 0 {
			sb.WriteString(" (")
			sb.WriteString(strings.Join(s.Cols, ", "))
			sb.WriteString(")")
		}
		if s.Select != nil {
			sb.WriteString(" ")
			printStmt(sb, s.Select)
			return
		}
		sb.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(e.String())
			}
			sb.WriteString(")")
		}

	case *Select:
		sb.WriteString("SELECT ")
		if s.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, item := range s.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			if item.Star {
				sb.WriteString("*")
				continue
			}
			sb.WriteString(item.Expr.String())
			if item.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(item.Alias)
			}
		}
		sb.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ref.Table)
			if ref.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(ref.Alias)
			}
		}
		if s.Where != nil {
			sb.WriteString(" WHERE ")
			sb.WriteString(s.Where.String())
		}
		if len(s.GroupBy) > 0 {
			sb.WriteString(" GROUP BY ")
			for i, e := range s.GroupBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(e.String())
			}
		}
		if s.Having != nil {
			sb.WriteString(" HAVING ")
			sb.WriteString(s.Having.String())
		}
		if len(s.OrderBy) > 0 {
			sb.WriteString(" ORDER BY ")
			for i, oi := range s.OrderBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(oi.Expr.String())
				if oi.Desc {
					sb.WriteString(" DESC")
				}
			}
		}
		if s.Limit >= 0 {
			fmt.Fprintf(sb, " LIMIT %d", s.Limit)
		}

	case *Explain:
		sb.WriteString("EXPLAIN ")
		if s.Analyze {
			sb.WriteString("ANALYZE ")
		}
		printStmt(sb, s.Select)
	}
}
