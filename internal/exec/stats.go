package exec

import (
	"sync/atomic"

	"setm/internal/tuple"
)

// OpStats records an operator's actual output cardinality: how many rows
// and batches it produced since Open. EXPLAIN ANALYZE reads these after a
// plan has been drained to report actual-vs-estimated rows per operator,
// and the calibration harness fits the planner's selectivity constants
// from them. The counters are atomic: parallel operators tally from
// worker goroutines while EXPLAIN ANALYZE (or a concurrent plan walk) may
// read them, and the race detector must stay quiet.
type OpStats struct {
	batches atomic.Int64
	rows    atomic.Int64
}

// Batches returns the number of batches produced since Open.
func (st *OpStats) Batches() int64 { return st.batches.Load() }

// Rows returns the number of rows produced since Open.
func (st *OpStats) Rows() int64 { return st.rows.Load() }

// Reset zeroes the counters (operators call this from Open; OpStats
// contains atomics and must not be reset by struct assignment).
func (st *OpStats) Reset() {
	st.batches.Store(0)
	st.rows.Store(0)
}

// AddRows counts rows produced outside the batch path (e.g. the classic
// sort path's row cursor).
func (st *OpStats) AddRows(n int64) { st.rows.Add(n) }

// StatsReporter is implemented by every operator in this package; it
// exposes the operator's actual-output counters.
type StatsReporter interface {
	ExecStats() *OpStats
}

// WorkerReporter is implemented by parallel operators; it exposes the
// per-worker (per-fragment) actual input row counts for EXPLAIN ANALYZE.
type WorkerReporter interface {
	WorkerRows() []int64
}

// tally counts one NextBatch result on its way out.
func (st *OpStats) tally(b *tuple.Batch, err error) (*tuple.Batch, error) {
	if err == nil {
		st.batches.Add(1)
		st.rows.Add(int64(b.Len()))
	}
	return b, err
}

// Counted NextBatch fronts for each operator: the real work happens in the
// operators' nextBatch methods; these wrappers keep the row/batch counters
// exact on both the batch path and the row path (rowCursor pulls through
// NextBatch).

func (s *HeapScan) NextBatch() (*tuple.Batch, error) { return s.stats.tally(s.nextBatch()) }
func (s *HeapScan) ExecStats() *OpStats              { return &s.stats }

func (s *MemScan) NextBatch() (*tuple.Batch, error) { return s.stats.tally(s.nextBatch()) }
func (s *MemScan) ExecStats() *OpStats              { return &s.stats }

func (r *Rename) NextBatch() (*tuple.Batch, error) { return r.stats.tally(r.nextBatch()) }
func (r *Rename) ExecStats() *OpStats              { return &r.stats }

func (f *Filter) NextBatch() (*tuple.Batch, error) { return f.stats.tally(f.nextBatch()) }
func (f *Filter) ExecStats() *OpStats              { return &f.stats }

func (p *Project) NextBatch() (*tuple.Batch, error) { return p.stats.tally(p.nextBatch()) }
func (p *Project) ExecStats() *OpStats              { return &p.stats }

func (l *Limit) NextBatch() (*tuple.Batch, error) { return l.stats.tally(l.nextBatch()) }
func (l *Limit) ExecStats() *OpStats              { return &l.stats }

func (d *Distinct) NextBatch() (*tuple.Batch, error) { return d.stats.tally(d.nextBatch()) }
func (d *Distinct) ExecStats() *OpStats              { return &d.stats }

func (s *Sort) NextBatch() (*tuple.Batch, error) { return s.stats.tally(s.nextBatch()) }
func (s *Sort) ExecStats() *OpStats              { return &s.stats }

func (g *SortGroup) NextBatch() (*tuple.Batch, error) { return g.stats.tally(g.nextBatch()) }
func (g *SortGroup) ExecStats() *OpStats              { return &g.stats }

func (g *HashGroup) NextBatch() (*tuple.Batch, error) { return g.stats.tally(g.nextBatch()) }
func (g *HashGroup) ExecStats() *OpStats              { return &g.stats }

func (m *MergeJoin) NextBatch() (*tuple.Batch, error) { return m.stats.tally(m.nextBatch()) }
func (m *MergeJoin) ExecStats() *OpStats              { return &m.stats }

func (h *HashJoin) NextBatch() (*tuple.Batch, error) { return h.stats.tally(h.nextBatch()) }
func (h *HashJoin) ExecStats() *OpStats              { return &h.stats }

func (n *NestedLoopJoin) NextBatch() (*tuple.Batch, error) { return n.stats.tally(n.nextBatch()) }
func (n *NestedLoopJoin) ExecStats() *OpStats              { return &n.stats }

func (g *Gather) NextBatch() (*tuple.Batch, error) { return g.stats.tally(g.nextBatch()) }
func (g *Gather) ExecStats() *OpStats              { return &g.stats }

func (w *Window) NextBatch() (*tuple.Batch, error) { return w.stats.tally(w.nextBatch()) }
func (w *Window) ExecStats() *OpStats              { return &w.stats }

func (r *Repartition) NextBatch() (*tuple.Batch, error) { return r.stats.tally(r.nextBatch()) }
func (r *Repartition) ExecStats() *OpStats              { return &r.stats }

func (g *ParallelGroup) NextBatch() (*tuple.Batch, error) { return g.stats.tally(g.nextBatch()) }
func (g *ParallelGroup) ExecStats() *OpStats              { return &g.stats }
