package exec

import (
	"io"

	"setm/internal/tuple"
)

// JoinPredicate is a residual predicate over the concatenated (left, right)
// tuple, applied after the equi-join keys match. SETM's extension step uses
// it for the lexicographic condition q.item > p.item_{k-1}.
type JoinPredicate func(left, right tuple.Tuple) (bool, error)

// MergeJoin is a merge-scan equi-join. Both inputs must arrive sorted on
// their respective key columns. The output tuple is the concatenation of
// the left and right tuples; callers project afterwards.
//
// The batch implementation streams column vectors from both sides,
// buffering each matching right-side group (dense copy, so group rows
// survive right-batch turnover) and replaying it for runs of equal left
// keys. SETM's right side is the set of items of a single transaction,
// which is small by construction.
type MergeJoin struct {
	left, right Operator
	leftKeys    []int
	rightKeys   []int
	residual    JoinPredicate
	schema      *tuple.Schema

	// Optional vectorized residual: right column gtRight > left column
	// gtLeft (SETM's lexicographic extension condition), checked on column
	// vectors instead of materialized tuples.
	gtLeft, gtRight int
	hasVecGT        bool

	leftB, rightB BatchOperator
	lcur, rcur    batchCursor

	group    *tuple.Batch  // buffered right group for curKey
	curKey   []tuple.Value // key of the buffered group
	haveKey  bool
	matched  bool // current left row is paired with the group
	gi       int
	gtSorted bool // group is ascending on gtRight: residual selects a suffix

	intKeys    bool // every join key column is an integer on both sides
	curKeyInts []int64

	out                *tuple.Batch
	lscratch, rscratch tuple.Tuple
	rows               rowCursor

	stats OpStats
}

// NewMergeJoin joins left and right on the given key columns.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []int, residual JoinPredicate) *MergeJoin {
	return &MergeJoin{
		left:      left,
		right:     right,
		leftKeys:  leftKeys,
		rightKeys: rightKeys,
		residual:  residual,
		schema:    left.Schema().Concat(right.Schema()),
		leftB:     asBatchOp(left),
		rightB:    asBatchOp(right),
	}
}

// SetVecResidualGT installs the vectorized residual right[rightCol] >
// left[leftCol] (column indexes into each input's own schema), replacing
// any row residual.
func (m *MergeJoin) SetVecResidualGT(leftCol, rightCol int) {
	m.gtLeft, m.gtRight = leftCol, rightCol
	m.hasVecGT = true
	m.residual = nil
}

func (m *MergeJoin) Schema() *tuple.Schema { return m.schema }

func (m *MergeJoin) Open() error {
	m.stats.Reset()
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	m.intKeys = true
	ls, rs := m.left.Schema(), m.right.Schema()
	for i := range m.leftKeys {
		if ls.Cols[m.leftKeys[i]].Kind != tuple.KindInt || rs.Cols[m.rightKeys[i]].Kind != tuple.KindInt {
			m.intKeys = false
			break
		}
	}
	if m.intKeys && m.curKeyInts == nil {
		m.curKeyInts = make([]int64, len(m.leftKeys))
	}
	m.lcur.reset(m.leftB)
	m.rcur.reset(m.rightB)
	if m.group == nil {
		m.group = tuple.NewBatch(m.right.Schema())
	}
	m.group.Reset()
	m.haveKey, m.matched = false, false
	m.rows.reset()
	return nil
}

func (m *MergeJoin) Close() error {
	err1 := m.left.Close()
	err2 := m.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// rightCmpLeft orders the current right row's key against the current
// left row's key, with an unboxed fast path for all-integer keys.
func (m *MergeJoin) rightCmpLeft() int {
	if m.intKeys {
		rphys, lphys := m.rcur.b.RowIdx(m.rcur.i), m.lcur.b.RowIdx(m.lcur.i)
		for i := range m.rightKeys {
			rv, lv := m.rcur.b.Cols[m.rightKeys[i]].I[rphys], m.lcur.b.Cols[m.leftKeys[i]].I[lphys]
			switch {
			case rv < lv:
				return -1
			case rv > lv:
				return 1
			}
		}
		return 0
	}
	return m.rcur.b.CompareRows(m.rcur.i, m.lcur.b, m.lcur.i, m.rightKeys, m.leftKeys, nil)
}

// leftKeyCmpCur orders the current left row's key against curKey.
func (m *MergeJoin) leftKeyCmpCur() int {
	phys := m.lcur.b.RowIdx(m.lcur.i)
	if m.intKeys {
		for i, lk := range m.leftKeys {
			lv := m.lcur.b.Cols[lk].I[phys]
			switch {
			case lv < m.curKeyInts[i]:
				return -1
			case lv > m.curKeyInts[i]:
				return 1
			}
		}
		return 0
	}
	for i, lk := range m.leftKeys {
		col := &m.lcur.b.Cols[lk]
		var v tuple.Value
		if col.Kind == tuple.KindInt {
			v = tuple.I(col.I[phys])
		} else {
			v = tuple.S(col.S[phys])
		}
		if c := tuple.Compare(v, m.curKey[i]); c != 0 {
			return c
		}
	}
	return 0
}

// loadGroup aligns the right side with the current left row's key and
// buffers the matching right rows (possibly none) into m.group.
func (m *MergeJoin) loadGroup() error {
	// Record the key first: it stays valid even as left batches turn over.
	if m.curKey == nil {
		m.curKey = make([]tuple.Value, len(m.leftKeys))
	}
	lphys := m.lcur.b.RowIdx(m.lcur.i)
	if m.intKeys {
		for i, lk := range m.leftKeys {
			m.curKeyInts[i] = m.lcur.b.Cols[lk].I[lphys]
		}
	} else {
		for i, lk := range m.leftKeys {
			col := &m.lcur.b.Cols[lk]
			if col.Kind == tuple.KindInt {
				m.curKey[i] = tuple.I(col.I[lphys])
			} else {
				m.curKey[i] = tuple.S(col.S[lphys])
			}
		}
	}
	m.haveKey = true
	m.group.Reset()

	// Skip right rows below the key.
	for {
		ok, err := m.rcur.ensure()
		if err != nil {
			return err
		}
		if !ok {
			return nil // right exhausted: empty group
		}
		if m.rightCmpLeft() >= 0 {
			break
		}
		m.rcur.i++
	}
	// Buffer the equal run.
	for {
		ok, err := m.rcur.ensure()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if m.rightCmpLeft() != 0 {
			break
		}
		m.group.AppendRow(m.rcur.b, m.rcur.b.RowIdx(m.rcur.i))
		m.rcur.i++
	}
	// A group ascending on the residual column lets nextBatch binary-search
	// the first passing row and bulk-append the suffix instead of testing
	// the residual per (left row, group row) pair. SETM's right side is one
	// transaction's items in file order — always ascending — so the fast
	// path is the common case; the scan keeps correctness when it is not.
	if m.hasVecGT {
		m.gtSorted = true
		v := m.group.Cols[m.gtRight].I
		for i := 1; i < len(v); i++ {
			if v[i] < v[i-1] {
				m.gtSorted = false
				break
			}
		}
	}
	return nil
}

// residualPass evaluates the residual for (current left row, group row gi).
func (m *MergeJoin) residualPass() (bool, error) {
	if m.hasVecGT {
		lphys := m.lcur.b.RowIdx(m.lcur.i)
		return m.group.Cols[m.gtRight].I[m.gi] > m.lcur.b.Cols[m.gtLeft].I[lphys], nil
	}
	if m.residual == nil {
		return true, nil
	}
	if m.lscratch == nil {
		m.lscratch = make(tuple.Tuple, m.left.Schema().Len())
		m.rscratch = make(tuple.Tuple, m.right.Schema().Len())
	}
	return m.residual(m.lcur.b.RowInto(m.lscratch, m.lcur.i), m.group.RowInto(m.rscratch, m.gi))
}

func (m *MergeJoin) nextBatch() (*tuple.Batch, error) {
	if m.out == nil {
		m.out = tuple.NewBatch(m.schema)
	}
	m.out.Reset()
	for m.out.Len() < tuple.BatchSize {
		ok, err := m.lcur.ensure()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if !m.matched {
			if !m.haveKey || m.leftKeyCmpCur() != 0 {
				if err := m.loadGroup(); err != nil {
					return nil, err
				}
			}
			if m.group.Len() == 0 {
				m.lcur.i++ // no right rows for this key
				continue
			}
			m.gi = 0
			if m.hasVecGT && m.gtSorted {
				// Skip straight to the first group row that passes the
				// residual: the passing rows are the suffix whose gtRight
				// value exceeds the left row's gtLeft value.
				x := m.lcur.b.Cols[m.gtLeft].I[m.lcur.b.RowIdx(m.lcur.i)]
				v := m.group.Cols[m.gtRight].I
				lo, hi := 0, len(v)
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if v[mid] <= x {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				m.gi = lo
			}
			m.matched = true
		}
		if m.hasVecGT && m.gtSorted {
			// Every remaining group row passes; emit them in bulk.
			take := m.group.Len() - m.gi
			if room := tuple.BatchSize - m.out.Len(); take > room {
				take = room
			}
			if take > 0 {
				appendJoinRows(m.out, m.lcur.b, m.lcur.i, m.group, m.gi, take)
				m.gi += take
			}
		} else {
			for m.gi < m.group.Len() && m.out.Len() < tuple.BatchSize {
				pass, err := m.residualPass()
				if err != nil {
					return nil, err
				}
				if pass {
					appendJoinRow(m.out, m.lcur.b, m.lcur.i, m.group, m.gi)
				}
				m.gi++
			}
		}
		if m.gi >= m.group.Len() {
			m.lcur.i++
			m.matched = false
		} else {
			break // output full mid-group; resume here next call
		}
	}
	if m.out.Len() == 0 {
		return nil, io.EOF
	}
	return m.out, nil
}

func (m *MergeJoin) Next() (tuple.Tuple, error) { return m.rows.next(m.NextBatch) }

// NestedLoopJoin joins by scanning the entire right input once per left
// tuple. The right input is materialized (columnar) at Open. This is the
// strawman the paper's Section 3 analysis rejects; it exists to be measured.
type NestedLoopJoin struct {
	left, right Operator
	pred        JoinPredicate
	schema      *tuple.Schema

	leftB BatchOperator
	store *tuple.Batch // materialized right input
	lcur  batchCursor
	ri    int

	out                *tuple.Batch
	lscratch, rscratch tuple.Tuple
	rows               rowCursor

	stats OpStats
}

// NewNestedLoopJoin joins left and right with predicate pred (nil = cross
// product).
func NewNestedLoopJoin(left, right Operator, pred JoinPredicate) *NestedLoopJoin {
	return &NestedLoopJoin{
		left:   left,
		right:  right,
		pred:   pred,
		schema: left.Schema().Concat(right.Schema()),
		leftB:  asBatchOp(left),
	}
}

func (n *NestedLoopJoin) Schema() *tuple.Schema { return n.schema }

func (n *NestedLoopJoin) Open() error {
	n.stats.Reset()
	if err := n.left.Open(); err != nil {
		return err
	}
	if err := n.right.Open(); err != nil {
		return err
	}
	n.store = tuple.NewBatch(n.right.Schema())
	rightB := asBatchOp(n.right)
	for {
		b, err := rightB.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n.store.Append(b)
	}
	n.lcur.reset(n.leftB)
	n.ri = 0
	n.rows.reset()
	return nil
}

func (n *NestedLoopJoin) Close() error {
	err1 := n.left.Close()
	err2 := n.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (n *NestedLoopJoin) nextBatch() (*tuple.Batch, error) {
	if n.out == nil {
		n.out = tuple.NewBatch(n.schema)
	}
	n.out.Reset()
	for n.out.Len() < tuple.BatchSize {
		ok, err := n.lcur.ensure()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for n.ri < n.store.Len() && n.out.Len() < tuple.BatchSize {
			pass := true
			if n.pred != nil {
				if n.lscratch == nil {
					n.lscratch = make(tuple.Tuple, n.left.Schema().Len())
					n.rscratch = make(tuple.Tuple, n.right.Schema().Len())
				}
				pass, err = n.pred(n.lcur.b.RowInto(n.lscratch, n.lcur.i), n.store.RowInto(n.rscratch, n.ri))
				if err != nil {
					return nil, err
				}
			}
			if pass {
				appendJoinRow(n.out, n.lcur.b, n.lcur.i, n.store, n.ri)
			}
			n.ri++
		}
		if n.ri >= n.store.Len() {
			n.lcur.i++
			n.ri = 0
		} else {
			break
		}
	}
	if n.out.Len() == 0 {
		return nil, io.EOF
	}
	return n.out, nil
}

func (n *NestedLoopJoin) Next() (tuple.Tuple, error) { return n.rows.next(n.NextBatch) }
