package exec

import (
	"io"

	"setm/internal/tuple"
)

// JoinPredicate is a residual predicate over the concatenated (left, right)
// tuple, applied after the equi-join keys match. SETM's extension step uses
// it for the lexicographic condition q.item > p.item_{k-1}.
type JoinPredicate func(left, right tuple.Tuple) (bool, error)

// MergeJoin is a merge-scan equi-join. Both inputs must arrive sorted on
// their respective key columns. The output tuple is the concatenation of
// the left and right tuples; callers project afterwards.
//
// Matching groups on the right side are buffered in memory so that
// many-to-many joins replay correctly; SETM's right side is the set of
// items of a single transaction, which is small by construction.
type MergeJoin struct {
	left, right Operator
	leftKeys    []int
	rightKeys   []int
	residual    JoinPredicate
	schema      *tuple.Schema
	leftRow     tuple.Tuple
	rightRow    tuple.Tuple // lookahead on right input
	rightDone   bool
	group       []tuple.Tuple // buffered right group matching current key
	groupIdx    int
	started     bool
}

// NewMergeJoin joins left and right on the given key columns.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []int, residual JoinPredicate) *MergeJoin {
	return &MergeJoin{
		left:      left,
		right:     right,
		leftKeys:  leftKeys,
		rightKeys: rightKeys,
		residual:  residual,
		schema:    left.Schema().Concat(right.Schema()),
	}
}

func (m *MergeJoin) Schema() *tuple.Schema { return m.schema }

func (m *MergeJoin) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	m.started = false
	m.rightDone = false
	m.group = nil
	return nil
}

func (m *MergeJoin) Close() error {
	err1 := m.left.Close()
	err2 := m.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (m *MergeJoin) advanceLeft() error {
	t, err := m.left.Next()
	if err == io.EOF {
		m.leftRow = nil
		return io.EOF
	}
	if err != nil {
		return err
	}
	m.leftRow = t
	return nil
}

func (m *MergeJoin) advanceRight() error {
	if m.rightDone {
		m.rightRow = nil
		return nil
	}
	t, err := m.right.Next()
	if err == io.EOF {
		m.rightRow = nil
		m.rightDone = true
		return nil
	}
	if err != nil {
		return err
	}
	m.rightRow = t
	return nil
}

func (m *MergeJoin) keyCompare(l, r tuple.Tuple) int {
	for i := range m.leftKeys {
		if c := tuple.Compare(l[m.leftKeys[i]], r[m.rightKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// loadGroup buffers every right tuple whose key equals m.leftRow's key,
// leaving m.rightRow as the first tuple beyond the group.
func (m *MergeJoin) loadGroup() error {
	m.group = m.group[:0]
	for m.rightRow != nil && m.keyCompare(m.leftRow, m.rightRow) == 0 {
		m.group = append(m.group, m.rightRow)
		if err := m.advanceRight(); err != nil {
			return err
		}
	}
	m.groupIdx = 0
	return nil
}

func (m *MergeJoin) Next() (tuple.Tuple, error) {
	if !m.started {
		m.started = true
		if err := m.advanceLeft(); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, err
		}
		if err := m.advanceRight(); err != nil {
			return nil, err
		}
		if err := m.alignAndLoad(); err != nil {
			return nil, err
		}
	}
	for {
		if m.leftRow == nil {
			return nil, io.EOF
		}
		// Emit remaining pairs from the current group.
		for m.groupIdx < len(m.group) {
			r := m.group[m.groupIdx]
			m.groupIdx++
			if m.residual != nil {
				ok, err := m.residual(m.leftRow, r)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out := make(tuple.Tuple, 0, len(m.leftRow)+len(r))
			out = append(out, m.leftRow...)
			out = append(out, r...)
			return out, nil
		}
		// Group exhausted: advance left; if the key is unchanged, replay the
		// same group, else realign.
		prev := m.leftRow
		if err := m.advanceLeft(); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, err
		}
		if m.keyEqual(prev, m.leftRow) {
			m.groupIdx = 0
			continue
		}
		if err := m.alignAndLoad(); err != nil {
			return nil, err
		}
	}
}

func (m *MergeJoin) keyEqual(a, b tuple.Tuple) bool {
	for i := range m.leftKeys {
		if !tuple.Equal(a[m.leftKeys[i]], b[m.leftKeys[i]]) {
			return false
		}
	}
	return true
}

// alignAndLoad advances both sides until their keys meet, then buffers the
// matching right group. On mismatch it skips the smaller side.
func (m *MergeJoin) alignAndLoad() error {
	for m.leftRow != nil {
		if m.rightRow == nil {
			// No right rows remain; left rows can never match again.
			m.group = m.group[:0]
			m.groupIdx = 0
			m.leftRow = nil
			return nil
		}
		c := m.keyCompare(m.leftRow, m.rightRow)
		switch {
		case c == 0:
			return m.loadGroup()
		case c < 0:
			if err := m.advanceLeft(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		default:
			if err := m.advanceRight(); err != nil {
				return err
			}
		}
	}
	return nil
}

// NestedLoopJoin joins by scanning the entire right input once per left
// tuple. The right input is materialized in memory at Open. This is the
// strawman the paper's Section 3 analysis rejects; it exists to be measured.
type NestedLoopJoin struct {
	left, right Operator
	pred        JoinPredicate
	schema      *tuple.Schema

	rightRows []tuple.Tuple
	leftRow   tuple.Tuple
	ri        int
}

// NewNestedLoopJoin joins left and right with predicate pred (nil = cross
// product).
func NewNestedLoopJoin(left, right Operator, pred JoinPredicate) *NestedLoopJoin {
	return &NestedLoopJoin{
		left:   left,
		right:  right,
		pred:   pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

func (n *NestedLoopJoin) Schema() *tuple.Schema { return n.schema }

func (n *NestedLoopJoin) Open() error {
	if err := n.left.Open(); err != nil {
		return err
	}
	if err := n.right.Open(); err != nil {
		return err
	}
	rows, err := drainWithoutOpen(n.right)
	if err != nil {
		return err
	}
	n.rightRows = rows
	n.leftRow = nil
	n.ri = 0
	return nil
}

func drainWithoutOpen(op Operator) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	for {
		t, err := op.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

func (n *NestedLoopJoin) Close() error {
	err1 := n.left.Close()
	err2 := n.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (n *NestedLoopJoin) Next() (tuple.Tuple, error) {
	for {
		if n.leftRow == nil {
			t, err := n.left.Next()
			if err != nil {
				return nil, err
			}
			n.leftRow = t
			n.ri = 0
		}
		for n.ri < len(n.rightRows) {
			r := n.rightRows[n.ri]
			n.ri++
			if n.pred != nil {
				ok, err := n.pred(n.leftRow, r)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out := make(tuple.Tuple, 0, len(n.leftRow)+len(r))
			out = append(out, n.leftRow...)
			out = append(out, r...)
			return out, nil
		}
		n.leftRow = nil
	}
}
