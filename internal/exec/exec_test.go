package exec

import (
	"io"
	"math/rand"
	"sort"
	"testing"

	hp "setm/internal/heap"
	"setm/internal/storage"
	"setm/internal/tuple"
	"setm/internal/xsort"
)

func mem(names string, rows ...tuple.Tuple) *MemScan {
	var cols []string
	start := 0
	for i := 0; i <= len(names); i++ {
		if i == len(names) || names[i] == ',' {
			cols = append(cols, names[start:i])
			start = i + 1
		}
	}
	return NewMemScan(tuple.IntSchema(cols...), rows)
}

func TestMemScanAndDrain(t *testing.T) {
	s := mem("a,b", tuple.Ints(1, 2), tuple.Ints(3, 4))
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][1].Int != 4 {
		t.Errorf("Drain = %v", got)
	}
}

func TestHeapScan(t *testing.T) {
	pool := storage.NewPool(storage.NewMemStore(), 16)
	f, err := hp.Create(pool, tuple.IntSchema("x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := f.Append(tuple.Ints(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Drain(NewHeapScan(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("scanned %d rows", len(got))
	}
}

func TestFilter(t *testing.T) {
	s := mem("v", tuple.Ints(1), tuple.Ints(2), tuple.Ints(3), tuple.Ints(4))
	f := NewFilter(s, func(tp tuple.Tuple) (bool, error) { return tp[0].Int%2 == 0, nil })
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0].Int != 2 || got[1][0].Int != 4 {
		t.Errorf("Filter = %v", got)
	}
}

func TestProject(t *testing.T) {
	s := mem("a,b,c", tuple.Ints(1, 2, 3))
	p := NewColumnProject(s, []int{2, 0})
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Int != 3 || got[0][1].Int != 1 {
		t.Errorf("Project = %v", got)
	}
	if p.Schema().Names()[0] != "c" {
		t.Errorf("projected schema = %v", p.Schema().Names())
	}
}

func TestProjectWithConstAndError(t *testing.T) {
	s := mem("a", tuple.Ints(5))
	p := NewProject(s, tuple.IntSchema("a", "k"),
		[]Projector{ColProjector(0), ConstProjector(tuple.I(42))})
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][1].Int != 42 {
		t.Errorf("const projector = %v", got)
	}
	bad := NewProject(mem("a", tuple.Ints(1)), tuple.IntSchema("x"), []Projector{ColProjector(9)})
	if _, err := Drain(bad); err == nil {
		t.Error("out-of-range projection succeeded")
	}
}

func TestLimit(t *testing.T) {
	s := mem("v", tuple.Ints(1), tuple.Ints(2), tuple.Ints(3))
	got, err := Drain(NewLimit(s, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("Limit = %v", got)
	}
}

func TestDistinctOnSortedInput(t *testing.T) {
	s := mem("v", tuple.Ints(1), tuple.Ints(1), tuple.Ints(2), tuple.Ints(2), tuple.Ints(2), tuple.Ints(3))
	got, err := Drain(NewDistinct(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("Distinct = %v", got)
	}
}

func TestSortOperatorInMemoryAndExternal(t *testing.T) {
	rows := []tuple.Tuple{tuple.Ints(3), tuple.Ints(1), tuple.Ints(2)}
	for _, withPool := range []bool{false, true} {
		var pool *storage.Pool
		if withPool {
			pool = storage.NewPool(storage.NewMemStore(), 16)
		}
		s := NewSort(mem("v", rows...), xsort.ByColumns(0), pool, 16)
		got, err := Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []int64{1, 2, 3} {
			if got[i][0].Int != want {
				t.Errorf("withPool=%v: sorted[%d] = %v", withPool, i, got[i])
			}
		}
	}
}

func TestMergeJoinBasic(t *testing.T) {
	// SALES-style join: R1(tid, item) ⋈ SALES(tid, item) on tid with
	// residual right.item > left.item — the SETM extension step.
	left := mem("tid,item",
		tuple.Ints(10, 1), tuple.Ints(10, 2), tuple.Ints(20, 1))
	right := mem("tid,item",
		tuple.Ints(10, 1), tuple.Ints(10, 2), tuple.Ints(10, 3), tuple.Ints(20, 1), tuple.Ints(20, 4))
	j := NewMergeJoin(left, right, []int{0}, []int{0},
		func(l, r tuple.Tuple) (bool, error) { return r[1].Int > l[1].Int, nil })
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: (10,1)x(10,2),(10,3); (10,2)x(10,3); (20,1)x(20,4) = 4 rows.
	if len(got) != 4 {
		t.Fatalf("MergeJoin produced %d rows: %v", len(got), got)
	}
	want := [][4]int64{{10, 1, 10, 2}, {10, 1, 10, 3}, {10, 2, 10, 3}, {20, 1, 20, 4}}
	for i, w := range want {
		for c := 0; c < 4; c++ {
			if got[i][c].Int != w[c] {
				t.Errorf("row %d = %v, want %v", i, got[i], w)
			}
		}
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	left := mem("k,l", tuple.Ints(1, 100), tuple.Ints(1, 101), tuple.Ints(2, 102))
	right := mem("k,r", tuple.Ints(1, 200), tuple.Ints(1, 201), tuple.Ints(3, 202))
	j := NewMergeJoin(left, right, []int{0}, []int{0}, nil)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // 2x2 for key 1
		t.Fatalf("many-to-many join = %d rows: %v", len(got), got)
	}
}

func TestMergeJoinDisjointKeys(t *testing.T) {
	left := mem("k", tuple.Ints(1), tuple.Ints(3), tuple.Ints(5))
	right := mem("k", tuple.Ints(2), tuple.Ints(4), tuple.Ints(6))
	j := NewMergeJoin(left, right, []int{0}, []int{0}, nil)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint join = %v", got)
	}
}

func TestMergeJoinEmptyInputs(t *testing.T) {
	for _, tc := range []struct {
		name        string
		left, right []tuple.Tuple
	}{
		{"both empty", nil, nil},
		{"left empty", nil, []tuple.Tuple{tuple.Ints(1)}},
		{"right empty", []tuple.Tuple{tuple.Ints(1)}, nil},
	} {
		j := NewMergeJoin(mem("k", tc.left...), mem("k", tc.right...), []int{0}, []int{0}, nil)
		got, err := Drain(j)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: got %v", tc.name, got)
		}
	}
}

func TestMergeJoinMatchesNestedLoop(t *testing.T) {
	// Property: on random sorted inputs, merge join == nested-loop join.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		var lrows, rrows []tuple.Tuple
		for i := 0; i < rng.Intn(40); i++ {
			lrows = append(lrows, tuple.Ints(rng.Int63n(10), rng.Int63n(5)))
		}
		for i := 0; i < rng.Intn(40); i++ {
			rrows = append(rrows, tuple.Ints(rng.Int63n(10), rng.Int63n(5)))
		}
		byKey := func(rows []tuple.Tuple) {
			sort.SliceStable(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
		}
		byKey(lrows)
		byKey(rrows)

		mj := NewMergeJoin(mem("k,v", lrows...), mem("k,v", rrows...), []int{0}, []int{0}, nil)
		mjRows, err := Drain(mj)
		if err != nil {
			t.Fatal(err)
		}
		nl := NewNestedLoopJoin(mem("k,v", lrows...), mem("k,v", rrows...),
			func(l, r tuple.Tuple) (bool, error) { return l[0].Int == r[0].Int, nil })
		nlRows, err := Drain(nl)
		if err != nil {
			t.Fatal(err)
		}
		if len(mjRows) != len(nlRows) {
			t.Fatalf("trial %d: merge=%d nested=%d", trial, len(mjRows), len(nlRows))
		}
		canon := func(rows []tuple.Tuple) {
			sort.Slice(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
		}
		canon(mjRows)
		canon(nlRows)
		for i := range mjRows {
			if !tuple.EqualTuples(mjRows[i], nlRows[i]) {
				t.Fatalf("trial %d row %d: %v vs %v", trial, i, mjRows[i], nlRows[i])
			}
		}
	}
}

func TestNestedLoopCrossProduct(t *testing.T) {
	l := mem("a", tuple.Ints(1), tuple.Ints(2))
	r := mem("b", tuple.Ints(10), tuple.Ints(20), tuple.Ints(30))
	got, err := Drain(NewNestedLoopJoin(l, r, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("cross product = %d rows", len(got))
	}
}

func TestSortGroupCount(t *testing.T) {
	// Count items, HAVING-style filtering applied downstream.
	s := mem("item", tuple.Ints(1), tuple.Ints(1), tuple.Ints(1), tuple.Ints(2), tuple.Ints(3), tuple.Ints(3))
	g := NewSortGroup(s, []int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}})
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{1: 3, 2: 1, 3: 2}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for _, row := range got {
		if want[row[0].Int] != row[1].Int {
			t.Errorf("count(%d) = %d, want %d", row[0].Int, row[1].Int, want[row[0].Int])
		}
	}
}

func TestSortGroupMultiKeyAndAggs(t *testing.T) {
	s := mem("a,b,v",
		tuple.Ints(1, 1, 5), tuple.Ints(1, 1, 7), tuple.Ints(1, 2, 1), tuple.Ints(2, 1, 9))
	g := NewSortGroup(s, []int{0, 1}, []AggSpec{
		{Kind: AggCount, Name: "cnt"},
		{Kind: AggSum, Col: 2, Name: "sum"},
		{Kind: AggMin, Col: 2, Name: "min"},
		{Kind: AggMax, Col: 2, Name: "max"},
	})
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("groups = %v", got)
	}
	// First group (1,1): count 2, sum 12, min 5, max 7.
	r := got[0]
	if r[2].Int != 2 || r[3].Int != 12 || r[4].Int != 5 || r[5].Int != 7 {
		t.Errorf("group (1,1) = %v", r)
	}
}

func TestSortGroupEmptyInput(t *testing.T) {
	g := NewSortGroup(mem("a"), []int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}})
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty group = %v", got)
	}
}

func TestMaterialize(t *testing.T) {
	pool := storage.NewPool(storage.NewMemStore(), 16)
	s := mem("a,b", tuple.Ints(1, 2), tuple.Ints(3, 4))
	f, err := Materialize(pool, s)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][0].Int != 3 {
		t.Errorf("Materialize = %v", rows)
	}
}

func TestPipelineComposition(t *testing.T) {
	// sort -> distinct -> group count over random data with duplicates.
	rng := rand.New(rand.NewSource(11))
	var rows []tuple.Tuple
	for i := 0; i < 1000; i++ {
		rows = append(rows, tuple.Ints(rng.Int63n(20)))
	}
	p := NewSortGroup(
		NewSort(mem("v", rows...), xsort.ByColumns(0), nil, 0),
		[]int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}})
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := 1; i < len(got); i++ {
		if got[i-1][0].Int >= got[i][0].Int {
			t.Fatal("group keys not ascending")
		}
	}
	for _, r := range got {
		total += r[1].Int
	}
	if total != 1000 {
		t.Errorf("counts sum to %d, want 1000", total)
	}
}

func TestOperatorEOFAfterExhaustion(t *testing.T) {
	s := mem("v", tuple.Ints(1))
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("call %d after exhaustion: %v", i, err)
		}
	}
}
