package exec

import (
	"io"
	"math/rand"
	"sort"
	"testing"

	"setm/internal/tuple"
)

// ---------------------------------------------------------------------------
// Row-at-a-time reference implementations. The batch operators are checked
// against these simple oracles on randomized inputs; the oracles compute
// the same relational operations directly over []tuple.Tuple.

func refSort(rows []tuple.Tuple, keys []SortKey) []tuple.Tuple {
	out := append([]tuple.Tuple{}, rows...)
	sort.SliceStable(out, func(i, j int) bool {
		for _, k := range keys {
			c := tuple.Compare(out[i][k.Col], out[j][k.Col])
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return out
}

func refFilter(rows []tuple.Tuple, keep func(tuple.Tuple) bool) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

func refDistinctSorted(rows []tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	for i, r := range rows {
		if i == 0 || !tuple.EqualTuples(rows[i-1], r) {
			out = append(out, r)
		}
	}
	return out
}

func refEquiJoin(l, r []tuple.Tuple, lk, rk []int) []tuple.Tuple {
	var out []tuple.Tuple
	for _, lt := range l {
		for _, rt := range r {
			match := true
			for i := range lk {
				if !tuple.Equal(lt[lk[i]], rt[rk[i]]) {
					match = false
					break
				}
			}
			if match {
				row := append(append(tuple.Tuple{}, lt...), rt...)
				out = append(out, row)
			}
		}
	}
	return out
}

func refGroupCount(rows []tuple.Tuple, groupCols []int) []tuple.Tuple {
	// rows must be sorted on groupCols; emits (group..., count) per run.
	var out []tuple.Tuple
	var cur tuple.Tuple
	var n int64
	flush := func() {
		if cur != nil {
			row := make(tuple.Tuple, 0, len(groupCols)+1)
			for _, gc := range groupCols {
				row = append(row, cur[gc])
			}
			out = append(out, append(row, tuple.I(n)))
		}
	}
	for _, r := range rows {
		if cur != nil && tuple.CompareAt(cur, r, groupCols) == 0 {
			n++
			continue
		}
		flush()
		cur, n = r, 1
	}
	flush()
	return out
}

// drainBatchesAsRows runs op through the batch contract only, expanding
// the batches to rows for comparison.
func drainBatchesAsRows(t *testing.T, op BatchOperator) []tuple.Tuple {
	t.Helper()
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	var out []tuple.Tuple
	for {
		b, err := op.NextBatch()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Row(i))
		}
	}
}

func requireSameRows(t *testing.T, label string, got, want []tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !tuple.EqualTuples(got[i], want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func randRows(rng *rand.Rand, n, arity int, domain int64) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		vals := make([]int64, arity)
		for j := range vals {
			vals[j] = rng.Int63n(domain)
		}
		rows[i] = tuple.Ints(vals...)
	}
	return rows
}

// TestBatchOperatorsMatchRowReference cross-checks every batch operator
// against the row-at-a-time reference on randomized inputs, through both
// the NextBatch contract and the row adapter.
func TestBatchOperatorsMatchRowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(2500) // spans multiple batches
		rows := randRows(rng, n, 3, 8)
		schema := tuple.IntSchema("a", "b", "c")

		// Sort (asc and desc keys).
		keys := []SortKey{{Col: 1}, {Col: 0, Desc: trial%2 == 0}}
		got := drainBatchesAsRows(t, NewSortKeys(NewMemScan(schema, rows), keys, nil, 0))
		requireSameRows(t, "sort", got, refSort(rows, keys))

		// Filter: vectorized a >= const AND row-predicate b != c.
		vec := func(b *tuple.Batch, in, out []int32) ([]int32, error) {
			a := b.Cols[0].I
			if in == nil {
				for i := range a {
					if a[i] >= 3 {
						out = append(out, int32(i))
					}
				}
				return out, nil
			}
			for _, i := range in {
				if a[i] >= 3 {
					out = append(out, i)
				}
			}
			return out, nil
		}
		pred := func(tp tuple.Tuple) (bool, error) { return tp[1].Int != tp[2].Int, nil }
		got = drainBatchesAsRows(t, NewFilterVec(NewMemScan(schema, rows), []VecPredicate{vec}, pred))
		requireSameRows(t, "filter", got, refFilter(rows, func(tp tuple.Tuple) bool {
			return tp[0].Int >= 3 && tp[1].Int != tp[2].Int
		}))

		// Project: column fast path (reorder + duplicate a column).
		got = drainBatchesAsRows(t, NewColumnProject(NewMemScan(schema, rows), []int{2, 0, 0}))
		want := make([]tuple.Tuple, len(rows))
		for i, r := range rows {
			want[i] = tuple.Tuple{r[2], r[0], r[0]}
		}
		requireSameRows(t, "project", got, want)

		// Distinct over sorted input.
		sorted := refSort(rows, []SortKey{{Col: 0}, {Col: 1}, {Col: 2}})
		got = drainBatchesAsRows(t, NewDistinct(NewMemScan(schema, sorted)))
		requireSameRows(t, "distinct", got, refDistinctSorted(sorted))

		// Limit that lands mid-batch.
		limit := int64(rng.Intn(n + 1))
		got = drainBatchesAsRows(t, NewLimit(NewMemScan(schema, rows), limit))
		requireSameRows(t, "limit", got, rows[:limit])

		// Joins: merge vs hash vs nested-loop vs reference, on sorted keys.
		lrows := refSort(randRows(rng, rng.Intn(400), 2, 6), []SortKey{{Col: 0}, {Col: 1}})
		rrows := refSort(randRows(rng, rng.Intn(400), 2, 6), []SortKey{{Col: 0}, {Col: 1}})
		js := tuple.IntSchema("k", "v")
		wantJoin := refEquiJoin(lrows, rrows, []int{0}, []int{0})
		canon := func(rows []tuple.Tuple) {
			sort.Slice(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
		}
		canon(wantJoin)
		for _, jc := range []struct {
			name string
			op   BatchOperator
		}{
			{"merge-join", NewMergeJoin(NewMemScan(js, lrows), NewMemScan(js, rrows), []int{0}, []int{0}, nil)},
			{"hash-join", NewHashJoin(NewMemScan(js, lrows), NewMemScan(js, rrows), []int{0}, []int{0}, nil)},
			{"nested-loop", NewNestedLoopJoin(NewMemScan(js, lrows), NewMemScan(js, rrows),
				func(l, r tuple.Tuple) (bool, error) { return l[0].Int == r[0].Int, nil })},
		} {
			got := drainBatchesAsRows(t, jc.op)
			canon(got)
			requireSameRows(t, jc.name, got, wantJoin)
		}

		// SortGroup COUNT(*) over sorted input.
		grouped := refSort(rows, []SortKey{{Col: 0}, {Col: 1}})
		got = drainBatchesAsRows(t, NewSortGroup(NewMemScan(schema, grouped), []int{0, 1},
			[]AggSpec{{Kind: AggCount, Name: "cnt"}}))
		requireSameRows(t, "sortgroup", got, refGroupCount(grouped, []int{0, 1}))
	}
}

// TestRowAdapterMatchesBatchPath checks that Next() (the row adapter) and
// NextBatch() yield identical streams for a composed pipeline.
func TestRowAdapterMatchesBatchPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 3000, 2, 10)
	schema := tuple.IntSchema("g", "v")
	build := func() Operator {
		sorted := NewSortKeys(NewMemScan(schema, rows), []SortKey{{Col: 0}}, nil, 0)
		return NewSortGroup(sorted, []int{0}, []AggSpec{
			{Kind: AggCount, Name: "cnt"},
			{Kind: AggSum, Col: 1, Name: "sum"},
			{Kind: AggMin, Col: 1, Name: "min"},
			{Kind: AggMax, Col: 1, Name: "max"},
		})
	}
	viaRows, err := Drain(build())
	if err != nil {
		t.Fatal(err)
	}
	viaBatches := drainBatchesAsRows(t, build().(BatchOperator))
	requireSameRows(t, "row adapter vs batch", viaRows, viaBatches)
}

// FuzzExecBatch mirrors FuzzPackedKernels for the executor: arbitrary
// bytes become rows and operator parameters; the batched sort → merge-join
// → group pipeline must match the row-oriented reference oracles exactly.
func FuzzExecBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), uint8(0))
	f.Add([]byte{0, 0, 0, 0}, uint8(0), uint8(1))
	f.Add([]byte{9, 1, 8, 2, 7, 3, 6, 4, 5}, uint8(2), uint8(2))
	f.Add([]byte{255, 255, 1, 1, 128}, uint8(3), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, keyByte, splitByte uint8) {
		const maxBytes = 512
		if len(data) > maxBytes {
			data = data[:maxBytes]
		}
		// Decode rows of arity 2 from the byte stream, small domain so
		// joins and groups actually collide.
		var rows []tuple.Tuple
		for i := 0; i+1 < len(data); i += 2 {
			rows = append(rows, tuple.Ints(int64(data[i]%16), int64(data[i+1]%16)))
		}
		schema := tuple.IntSchema("k", "v")
		keyCol := int(keyByte) % 2
		keys := []SortKey{{Col: keyCol}, {Col: 1 - keyCol}}

		// Sort.
		got := drainBatchesAsRows(t, NewSortKeys(NewMemScan(schema, rows), keys, nil, 0))
		requireSameRows(t, "fuzz sort", got, refSort(rows, keys))

		// Split into two sorted relations and merge-join on the key column.
		split := int(splitByte) % (len(rows) + 1)
		l := refSort(rows[:split], []SortKey{{Col: 0}, {Col: 1}})
		r := refSort(rows[split:], []SortKey{{Col: 0}, {Col: 1}})
		want := refEquiJoin(l, r, []int{0}, []int{0})
		canon := func(rows []tuple.Tuple) {
			sort.Slice(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
		}
		canon(want)
		gotJ := drainBatchesAsRows(t, NewMergeJoin(NewMemScan(schema, l), NewMemScan(schema, r),
			[]int{0}, []int{0}, nil))
		canon(gotJ)
		requireSameRows(t, "fuzz merge-join", gotJ, want)
		gotH := drainBatchesAsRows(t, NewHashJoin(NewMemScan(schema, l), NewMemScan(schema, r),
			[]int{0}, []int{0}, nil))
		canon(gotH)
		requireSameRows(t, "fuzz hash-join", gotH, want)

		// Group-count the sorted stream.
		sorted := refSort(rows, []SortKey{{Col: 0}, {Col: 1}})
		gotG := drainBatchesAsRows(t, NewSortGroup(NewMemScan(schema, sorted), []int{0, 1},
			[]AggSpec{{Kind: AggCount, Name: "cnt"}}))
		requireSameRows(t, "fuzz group", gotG, refGroupCount(sorted, []int{0, 1}))
	})
}
