package exec

import (
	"math/rand"
	"sort"
	"testing"

	"setm/internal/tuple"
)

func TestHashJoinBasic(t *testing.T) {
	left := mem("tid,item", tuple.Ints(10, 1), tuple.Ints(10, 2), tuple.Ints(20, 1))
	right := mem("tid,item",
		tuple.Ints(10, 1), tuple.Ints(10, 2), tuple.Ints(10, 3), tuple.Ints(20, 1), tuple.Ints(20, 4))
	j := NewHashJoin(left, right, []int{0}, []int{0},
		func(l, r tuple.Tuple) (bool, error) { return r[1].Int > l[1].Int, nil })
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("HashJoin produced %d rows: %v", len(got), got)
	}
}

func TestHashJoinMatchesMergeJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		var lrows, rrows []tuple.Tuple
		for i := 0; i < rng.Intn(60); i++ {
			lrows = append(lrows, tuple.Ints(rng.Int63n(8), rng.Int63n(5)))
		}
		for i := 0; i < rng.Intn(60); i++ {
			rrows = append(rrows, tuple.Ints(rng.Int63n(8), rng.Int63n(5)))
		}
		canon := func(rows []tuple.Tuple) {
			sort.Slice(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
		}
		canon(lrows)
		canon(rrows)

		hj := NewHashJoin(mem("k,v", lrows...), mem("k,v", rrows...), []int{0}, []int{0}, nil)
		hjRows, err := Drain(hj)
		if err != nil {
			t.Fatal(err)
		}
		mj := NewMergeJoin(mem("k,v", lrows...), mem("k,v", rrows...), []int{0}, []int{0}, nil)
		mjRows, err := Drain(mj)
		if err != nil {
			t.Fatal(err)
		}
		if len(hjRows) != len(mjRows) {
			t.Fatalf("trial %d: hash=%d merge=%d", trial, len(hjRows), len(mjRows))
		}
		canon(hjRows)
		canon(mjRows)
		for i := range hjRows {
			if !tuple.EqualTuples(hjRows[i], mjRows[i]) {
				t.Fatalf("trial %d row %d: %v vs %v", trial, i, hjRows[i], mjRows[i])
			}
		}
	}
}

func TestHashJoinEmptyInputs(t *testing.T) {
	for _, tc := range []struct {
		name        string
		left, right []tuple.Tuple
	}{
		{"both empty", nil, nil},
		{"left empty", nil, []tuple.Tuple{tuple.Ints(1)}},
		{"right empty", []tuple.Tuple{tuple.Ints(1)}, nil},
	} {
		j := NewHashJoin(mem("k", tc.left...), mem("k", tc.right...), []int{0}, []int{0}, nil)
		got, err := Drain(j)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: got %v", tc.name, got)
		}
	}
}

func TestHashJoinStringKeys(t *testing.T) {
	schema := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindString},
		tuple.Column{Name: "v", Kind: tuple.KindInt},
	)
	l := NewMemScan(schema, []tuple.Tuple{
		{tuple.S("a"), tuple.I(1)}, {tuple.S("b"), tuple.I(2)},
	})
	r := NewMemScan(schema, []tuple.Tuple{
		{tuple.S("b"), tuple.I(20)}, {tuple.S("c"), tuple.I(30)},
	})
	j := NewHashJoin(l, r, []int{0}, []int{0}, nil)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][1].Int != 2 || got[0][3].Int != 20 {
		t.Errorf("string-key join = %v", got)
	}
}

func TestHashGroupMatchesSortGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var rows []tuple.Tuple
	for i := 0; i < 2000; i++ {
		rows = append(rows, tuple.Ints(rng.Int63n(30), rng.Int63n(100)))
	}
	aggs := []AggSpec{
		{Kind: AggCount, Name: "cnt"},
		{Kind: AggSum, Col: 1, Name: "sum"},
		{Kind: AggMin, Col: 1, Name: "min"},
		{Kind: AggMax, Col: 1, Name: "max"},
	}
	hg := NewHashGroup(mem("k,v", rows...), []int{0}, aggs)
	hgRows, err := Drain(hg)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]tuple.Tuple(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0].Int < sorted[j][0].Int })
	sg := NewSortGroup(mem("k,v", sorted...), []int{0}, aggs)
	sgRows, err := Drain(sg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hgRows) != len(sgRows) {
		t.Fatalf("hash=%d sort=%d groups", len(hgRows), len(sgRows))
	}
	canon := func(rows []tuple.Tuple) {
		sort.Slice(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
	}
	canon(hgRows)
	canon(sgRows)
	for i := range hgRows {
		if !tuple.EqualTuples(hgRows[i], sgRows[i]) {
			t.Errorf("group %d: hash %v, sort %v", i, hgRows[i], sgRows[i])
		}
	}
}

func TestHashGroupEmptyAndReopen(t *testing.T) {
	g := NewHashGroup(mem("k"), []int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}})
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty hash group = %v", got)
	}
}

func TestHashGroupDeterministicOrder(t *testing.T) {
	// First-seen order: keys appear in input order.
	rows := []tuple.Tuple{tuple.Ints(5), tuple.Ints(3), tuple.Ints(5), tuple.Ints(9)}
	g := NewHashGroup(mem("k", rows...), []int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}})
	got, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 3, 9}
	for i, w := range want {
		if got[i][0].Int != w {
			t.Errorf("group %d key = %v, want %d", i, got[i], w)
		}
	}
}
