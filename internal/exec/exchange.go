// Exchange operators: the morsel-driven parallel substrate of the
// executor. A query pipeline is split into fragments — independent
// operator trees over disjoint page ranges of the same heap file — and an
// exchange runs them on worker goroutines:
//
//   - Gather runs N fragments on up to W workers and re-emits their
//     batches in fragment order, so a plan wrapped in a Gather produces
//     exactly the serial row order (fragments over consecutive page
//     ranges concatenate to the full serial scan).
//   - Repartition additionally hash-partitions the fragment output on key
//     columns and emits partition-major — the redistribution exchange a
//     partitioned consumer (hash build, partial aggregate) sits on.
//
// Fragment boundaries over sorted files follow the carry-tid discipline
// of the core executor (SplitByKey): boundaries are chosen at page edges
// where the leading key strictly increases, each fragment starts one page
// early and applies a key Window, so a key group spanning a page edge is
// processed by exactly one fragment.
package exec

import (
	"io"
	"sync"
	"sync/atomic"

	hp "setm/internal/heap"
	"setm/internal/tuple"
)

// gatherQueueDepth bounds the per-fragment output queue: workers run at
// most this many batches ahead of the consumer on any one fragment.
const gatherQueueDepth = 4

// Gather runs its fragment pipelines on worker goroutines and emits their
// batches in fragment order. Fragments are claimed dynamically (morsel
// stealing): an idle worker picks the next unstarted fragment, so skew in
// fragment cost does not idle the pool. Batches cross the exchange as
// dense copies into recycled buffers — the producer contract ("batch
// valid until next NextBatch") stops at the channel.
//
// A Gather is re-openable: Close stops the workers and a later Open
// restarts them, which the engine's plan cache relies on.
type Gather struct {
	fragments []Operator
	schema    *tuple.Schema
	workers   int

	outs    []chan *tuple.Batch
	free    []chan *tuple.Batch
	errs    []error // errs[f] is written before outs[f] closes
	perRows []int64 // rows produced by fragment f, same publication order
	cancel  chan struct{}
	wg      sync.WaitGroup
	claim   atomic.Int64

	cur  int          // fragment the consumer is draining
	last *tuple.Batch // batch handed out last call, recycled on the next
	rows rowCursor

	stats OpStats
}

// NewGather builds a gather exchange over fragments, run on up to workers
// goroutines. All fragments must share one schema.
func NewGather(fragments []Operator, workers int) *Gather {
	if workers < 1 {
		workers = 1
	}
	if workers > len(fragments) {
		workers = len(fragments)
	}
	return &Gather{fragments: fragments, schema: fragments[0].Schema(), workers: workers}
}

func (g *Gather) Schema() *tuple.Schema { return g.schema }

// Workers returns the worker count (for EXPLAIN).
func (g *Gather) Workers() int { return g.workers }

// Fragments returns the fragment count (for EXPLAIN).
func (g *Gather) Fragments() int { return len(g.fragments) }

// Fragment returns fragment i's pipeline; EXPLAIN renders fragment 0 as
// the representative child.
func (g *Gather) Fragment(i int) Operator { return g.fragments[i] }

// WorkerRows reports rows produced per fragment; valid after the gather
// has been drained.
func (g *Gather) WorkerRows() []int64 { return g.perRows }

func (g *Gather) Open() error {
	g.stats.Reset()
	g.rows.reset()
	g.stopWorkers()
	n := len(g.fragments)
	g.outs = make([]chan *tuple.Batch, n)
	g.free = make([]chan *tuple.Batch, n)
	g.errs = make([]error, n)
	g.perRows = make([]int64, n)
	for i := range g.outs {
		g.outs[i] = make(chan *tuple.Batch, gatherQueueDepth)
		g.free[i] = make(chan *tuple.Batch, gatherQueueDepth)
	}
	g.cancel = make(chan struct{})
	g.claim.Store(0)
	g.cur, g.last = 0, nil
	g.wg.Add(g.workers)
	for w := 0; w < g.workers; w++ {
		go g.worker()
	}
	return nil
}

func (g *Gather) worker() {
	defer g.wg.Done()
	for {
		f := int(g.claim.Add(1)) - 1
		if f >= len(g.fragments) {
			return
		}
		if !g.runFragment(f) {
			return // cancelled
		}
	}
}

// runFragment drains fragment f into its output queue; returns false when
// cancelled mid-stream.
func (g *Gather) runFragment(f int) bool {
	op := g.fragments[f]
	bop := asBatchOp(op)
	err := bop.Open()
	if err == nil {
		var rows int64
		for {
			var b *tuple.Batch
			b, err = bop.NextBatch()
			if err != nil {
				if err == io.EOF {
					err = nil
				}
				break
			}
			var out *tuple.Batch
			select {
			case out = <-g.free[f]:
				out.Reset()
			default:
				out = tuple.NewBatch(g.schema)
			}
			out.Grow(b.Len())
			out.Append(b)
			rows += int64(out.Len())
			select {
			case g.outs[f] <- out:
			case <-g.cancel:
				op.Close()
				return false
			}
		}
		g.perRows[f] = rows
	}
	if cerr := op.Close(); err == nil {
		err = cerr
	}
	g.errs[f] = err
	close(g.outs[f])
	return true
}

func (g *Gather) nextBatch() (*tuple.Batch, error) {
	if g.last != nil {
		// Recycle the buffer the consumer has finished with. The queue has
		// the same capacity as the free list, so the send cannot block.
		select {
		case g.free[g.cur] <- g.last:
		default:
		}
		g.last = nil
	}
	for g.cur < len(g.outs) {
		b, ok := <-g.outs[g.cur]
		if !ok {
			if err := g.errs[g.cur]; err != nil {
				return nil, err
			}
			g.cur++
			continue
		}
		g.last = b
		return b, nil
	}
	return nil, io.EOF
}

func (g *Gather) Next() (tuple.Tuple, error) { return g.rows.next(g.NextBatch) }

// stopWorkers cancels and joins the worker pool, draining queued batches.
func (g *Gather) stopWorkers() {
	if g.cancel == nil {
		return
	}
	close(g.cancel)
	// Unblock producers stuck on full queues.
	for _, ch := range g.outs {
		for {
			if _, ok := <-ch; !ok {
				break
			}
		}
	}
	g.wg.Wait()
	g.cancel = nil
	g.outs, g.free = nil, nil
}

func (g *Gather) Close() error {
	g.stopWorkers()
	g.last = nil
	return nil
}

// ---------------------------------------------------------------------------
// Repartition

// Repartition is the redistribution exchange: fragments run on workers as
// in Gather, but every row is hash-partitioned on key columns into parts
// buckets, and the output emits partition-major — all rows of partition
// 0, then partition 1, and so on. Within a partition rows keep (fragment,
// row) order, so the output is deterministic for any worker count. All
// key columns must be integers.
type Repartition struct {
	fragments []Operator
	schema    *tuple.Schema
	keyCols   []int
	parts     int
	workers   int

	bufs    [][]*tuple.Batch // [fragment][partition] buffers
	perRows []int64
	part    int // partition being emitted
	frag    int // fragment being emitted within part
	rows    rowCursor

	stats OpStats
}

// NewRepartition builds a repartition exchange over fragments on the given
// integer key columns.
func NewRepartition(fragments []Operator, keyCols []int, parts, workers int) *Repartition {
	if parts < 1 {
		parts = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(fragments) {
		workers = len(fragments)
	}
	return &Repartition{
		fragments: fragments,
		schema:    fragments[0].Schema(),
		keyCols:   keyCols,
		parts:     parts,
		workers:   workers,
	}
}

func (r *Repartition) Schema() *tuple.Schema { return r.schema }

// Workers returns the worker count (for EXPLAIN).
func (r *Repartition) Workers() int { return r.workers }

// Parts returns the partition count (for EXPLAIN).
func (r *Repartition) Parts() int { return r.parts }

// Fragment returns fragment i's pipeline (EXPLAIN renders fragment 0).
func (r *Repartition) Fragment(i int) Operator { return r.fragments[i] }

// WorkerRows reports rows consumed per fragment.
func (r *Repartition) WorkerRows() []int64 { return r.perRows }

// PartitionHash is the row-to-partition function: a multiplicative mix of
// the key words, shared with partitioned hash-table builders so their
// partition assignment agrees with the exchange's.
func PartitionHash(b *tuple.Batch, phys int, keyCols []int) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, kc := range keyCols {
		h ^= uint64(b.Cols[kc].I[phys])
		h *= 1099511628211
	}
	// Final avalanche so low bits depend on every key word.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Open materializes the partitioned input: fragments run concurrently,
// each partitioning its own output into private buffers (no shared state
// beyond the claim counter), then the buffers are exposed partition-major.
func (r *Repartition) Open() error {
	r.stats.Reset()
	r.rows.reset()
	n := len(r.fragments)
	r.bufs = make([][]*tuple.Batch, n)
	r.perRows = make([]int64, n)
	errs := make([]error, n)
	var claim atomic.Int64
	var wg sync.WaitGroup
	wg.Add(r.workers)
	for w := 0; w < r.workers; w++ {
		go func() {
			defer wg.Done()
			for {
				f := int(claim.Add(1)) - 1
				if f >= n {
					return
				}
				errs[f] = r.runFragment(f)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			r.bufs = nil
			return err
		}
	}
	r.part, r.frag = 0, 0
	return nil
}

func (r *Repartition) runFragment(f int) error {
	op := r.fragments[f]
	bop := asBatchOp(op)
	if err := bop.Open(); err != nil {
		op.Close()
		return err
	}
	parts := make([]*tuple.Batch, r.parts)
	for p := range parts {
		parts[p] = tuple.NewBatch(r.schema)
	}
	mask := uint64(r.parts)
	var rows int64
	for {
		b, err := bop.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			op.Close()
			return err
		}
		nb := b.Len()
		for i := 0; i < nb; i++ {
			phys := b.RowIdx(i)
			p := PartitionHash(b, phys, r.keyCols) % mask
			parts[p].AppendRow(b, phys)
		}
		rows += int64(nb)
	}
	r.bufs[f] = parts
	r.perRows[f] = rows
	return op.Close()
}

func (r *Repartition) nextBatch() (*tuple.Batch, error) {
	if r.bufs == nil {
		return nil, io.EOF
	}
	for r.part < r.parts {
		for r.frag < len(r.bufs) {
			b := r.bufs[r.frag][r.part]
			r.frag++
			if b.Len() > 0 {
				return b, nil
			}
		}
		r.part++
		r.frag = 0
	}
	return nil, io.EOF
}

func (r *Repartition) Next() (tuple.Tuple, error) { return r.rows.next(r.NextBatch) }

func (r *Repartition) Close() error {
	r.bufs = nil
	return nil
}

// ---------------------------------------------------------------------------
// Key windows and fragment splitting

// Window bounds a stream that is sorted ascending on integer column col to
// keys in [lo, hi): leading rows below lo are skipped, and the stream ends
// at the first row ≥ hi (early stop — later pages are never read). This
// is how a fragment over an overlapping page range claims exactly its key
// span.
type Window struct {
	child  Operator
	col    int
	lo, hi int64
	hasLo  bool
	hasHi  bool

	childB  BatchOperator
	skipped bool
	done    bool
	selBuf  []int32
	rows    rowCursor

	stats OpStats
}

// NewWindow bounds child (sorted on col) to [lo, hi); hasLo/hasHi mark
// open ends.
func NewWindow(child Operator, col int, lo int64, hasLo bool, hi int64, hasHi bool) *Window {
	return &Window{child: child, col: col, lo: lo, hasLo: hasLo, hi: hi, hasHi: hasHi,
		childB: asBatchOp(child)}
}

func (w *Window) Schema() *tuple.Schema { return w.child.Schema() }

func (w *Window) Open() error {
	w.stats.Reset()
	w.rows.reset()
	w.skipped, w.done = false, false
	return w.child.Open()
}

func (w *Window) Close() error { return w.child.Close() }

// Bounds reports the window for EXPLAIN.
func (w *Window) Bounds() (lo int64, hasLo bool, hi int64, hasHi bool) {
	return w.lo, w.hasLo, w.hi, w.hasHi
}

func (w *Window) nextBatch() (*tuple.Batch, error) {
	if w.done {
		return nil, io.EOF
	}
	for {
		b, err := w.childB.NextBatch()
		if err != nil {
			return nil, err
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		// The stream is sorted on col, so the surviving rows are one
		// contiguous logical range [start, end) of the batch.
		start := 0
		if !w.skipped && w.hasLo {
			col := &b.Cols[w.col]
			for start < n && col.I[b.RowIdx(start)] < w.lo {
				start++
			}
			if start < n {
				w.skipped = true
			}
		}
		end := n
		if w.hasHi {
			col := &b.Cols[w.col]
			for end > start && col.I[b.RowIdx(end-1)] >= w.hi {
				end--
			}
			if end < n {
				w.done = true // the bound was reached inside this batch
			}
		}
		if start >= end {
			if w.done {
				return nil, io.EOF
			}
			continue
		}
		if start == 0 && end == n {
			return b, nil
		}
		sel := w.selBuf[:0]
		for i := start; i < end; i++ {
			sel = append(sel, int32(b.RowIdx(i)))
		}
		w.selBuf = sel[:0:cap(sel)]
		b.SetSel(sel)
		return b, nil
	}
}

func (w *Window) Next() (tuple.Tuple, error) { return w.rows.next(w.NextBatch) }

// KeyRange is one fragment's share of a key-sorted heap file: the page
// range to scan and the key window to apply. Start pages overlap the
// previous fragment by one page (the carry page), so a key group spanning
// a page edge is seen — and windowed — by exactly one fragment.
type KeyRange struct {
	PageStart, PageEnd int
	Lo, Hi             int64
	HasLo, HasHi       bool
}

// SplitByKey cuts a heap file sorted ascending on integer column col into
// at most n KeyRanges with key-aligned boundaries. Boundaries are chosen
// only at pages whose first key strictly exceeds the previous page's
// first key: then a group equal to a boundary key cannot start earlier
// than the carry page, so scanning from one page early and windowing to
// [lo, hi) partitions the rows exactly. Returns fewer ranges (possibly
// one) when the file has too few distinct page boundaries.
func SplitByKey(f *hp.File, col, n int) ([]KeyRange, error) {
	pages := f.Pages()
	if n < 2 || pages < 2 {
		return []KeyRange{{PageStart: 0, PageEnd: pages}}, nil
	}
	type bound struct {
		page int
		key  int64
	}
	var bounds []bound
	step := pages / n
	if step < 1 {
		step = 1
	}
	prevKey, prevOK, err := f.FirstKey(0, col)
	if err != nil {
		return nil, err
	}
	target := step
	for p := 1; p < pages && len(bounds) < n-1; p++ {
		k, ok, err := f.FirstKey(p, col)
		if err != nil {
			return nil, err
		}
		if ok && (!prevOK || k > prevKey) && p >= target {
			bounds = append(bounds, bound{page: p, key: k})
			target = p + step
		}
		if ok {
			prevKey, prevOK = k, ok
		}
	}
	ranges := make([]KeyRange, 0, len(bounds)+1)
	cur := KeyRange{PageStart: 0}
	for _, b := range bounds {
		cur.PageEnd = b.page
		cur.Hi, cur.HasHi = b.key, true
		ranges = append(ranges, cur)
		// Next fragment: one carry page early, lower-bounded by the key.
		cur = KeyRange{PageStart: b.page - 1, Lo: b.key, HasLo: true}
	}
	cur.PageEnd = pages
	ranges = append(ranges, cur)
	return ranges, nil
}

// ProbeRange returns the page range of a key-sorted heap file that can
// hold rows with keys in [lo, hi): scanning starts at the last page whose
// first key is strictly below lo (rows ≥ lo cannot occur earlier) and
// ends with the file — the Window's early stop cuts the tail without
// reading it. Used for the right side of a split merge join, whose
// boundaries come from the left file.
func ProbeRange(f *hp.File, col int, lo int64, hasLo bool) (start int, err error) {
	if !hasLo {
		return 0, nil
	}
	// Binary search the page first-keys for the last strictly-below page.
	// Pages with unreadable keys (the possibly-empty tail) sort high.
	n := f.Pages()
	loP, hiP := 0, n
	for loP < hiP {
		mid := int(uint(loP+hiP) >> 1)
		k, ok, err := f.FirstKey(mid, col)
		if err != nil {
			return 0, err
		}
		if ok && k < lo {
			loP = mid + 1
		} else {
			hiP = mid
		}
	}
	if loP == 0 {
		return 0, nil
	}
	return loP - 1, nil
}

// FragmentScans clones a stateless scan pipeline — Rename, vectorized
// Filter, and pure column Project over one whole-file HeapScan — into n
// page-range fragments that together cover the file. Consecutive page
// ranges concatenate to the serial scan order and every cloned operator is
// order-preserving, so a Gather (or order-insensitive consumer like
// ParallelGroup) over the fragments reproduces the serial pipeline's
// output exactly. Clones share the compiled predicate closures, which are
// stateless, but own their buffers. Returns nil when the tree contains
// anything else — row predicates and projector closures may carry shared
// scratch state — or when the file is too small to split.
func FragmentScans(op Operator, n int) []Operator {
	var chain []Operator
	cur := op
	var base *HeapScan
walk:
	for {
		switch v := cur.(type) {
		case *Rename:
			chain = append(chain, v)
			cur = v.child
		case *Filter:
			if v.pred != nil {
				return nil
			}
			chain = append(chain, v)
			cur = v.child
		case *Project:
			if v.colIdxs == nil {
				return nil
			}
			chain = append(chain, v)
			cur = v.child
		case *HeapScan:
			if v.end != 0 {
				return nil // already ranged
			}
			base = v
			break walk
		default:
			return nil
		}
	}
	pages := base.file.Pages()
	if n < 2 || pages < 2 {
		return nil
	}
	if n > pages {
		n = pages
	}
	frags := make([]Operator, n)
	for i := range frags {
		frags[i] = rebuildChain(chain, NewHeapScanRange(base.file, i*pages/n, (i+1)*pages/n))
	}
	return frags
}

// rebuildChain re-instantiates the recorded pipeline operators (outermost
// first) over a new leaf.
func rebuildChain(chain []Operator, leaf Operator) Operator {
	cur := leaf
	for j := len(chain) - 1; j >= 0; j-- {
		switch v := chain[j].(type) {
		case *Rename:
			cur = NewRename(cur, v.schema)
		case *Filter:
			cur = NewFilterVec(cur, v.vecs, nil)
		case *Project:
			cur = NewProjectColumns(cur, v.colIdxs, v.schema)
		}
	}
	return cur
}

// scanPipeline walks a position-preserving pipeline (Rename or stateless
// Filter only) down to its whole-file HeapScan, returning the chain
// (outermost first) and the scan; (nil, nil) when the shape doesn't match.
// Column indexes of the pipeline's output schema are valid against the
// scan's schema — neither operator reorders columns.
func scanPipeline(op Operator) ([]Operator, *HeapScan) {
	var chain []Operator
	cur := op
	for {
		switch v := cur.(type) {
		case *Rename:
			chain = append(chain, v)
			cur = v.child
		case *Filter:
			if v.pred != nil {
				return nil, nil
			}
			chain = append(chain, v)
			cur = v.child
		case *HeapScan:
			if v.end != 0 {
				return nil, nil
			}
			return chain, v
		default:
			return nil, nil
		}
	}
}

// SplitMergeJoin replicates a merge join over key-aligned page-range
// fragments under a Gather. Both inputs must be position-preserving scan
// pipelines (see scanPipeline) whose heap files are physically ordered on
// the first join key — the planner guarantees this by splitting only
// joins whose inputs needed no sort. SplitByKey places fragment
// boundaries on the left file only where a page's first key strictly
// exceeds its predecessor's, each fragment starts one page early, and the
// Window bounds [Lo, Hi) make the overlap exact — so a run of duplicate
// keys is processed by exactly one fragment. The right side of each
// fragment scans from ProbeRange's start under the same key window, which
// admits exactly the rows that can match. Fragment outputs concatenate in
// left key order, reproducing the serial join bit for bit. Returns nil
// when the shape doesn't support splitting.
func SplitMergeJoin(m *MergeJoin, workers int) *Gather {
	if workers < 2 || m.residual != nil || len(m.leftKeys) == 0 {
		return nil
	}
	lChain, lScan := scanPipeline(m.left)
	rChain, rScan := scanPipeline(m.right)
	if lScan == nil || rScan == nil {
		return nil
	}
	lCol, rCol := m.leftKeys[0], m.rightKeys[0]
	if m.left.Schema().Cols[lCol].Kind != tuple.KindInt || m.right.Schema().Cols[rCol].Kind != tuple.KindInt {
		return nil
	}
	ranges, err := SplitByKey(lScan.file, lCol, workers)
	if err != nil || len(ranges) < 2 {
		return nil
	}
	frags := make([]Operator, len(ranges))
	for i, kr := range ranges {
		var lv Operator = NewHeapScanRange(lScan.file, kr.PageStart, kr.PageEnd)
		lv = NewWindow(lv, lCol, kr.Lo, kr.HasLo, kr.Hi, kr.HasHi)
		lv = rebuildChain(lChain, lv)
		start := 0
		if kr.HasLo {
			if start, err = ProbeRange(rScan.file, rCol, kr.Lo, kr.HasLo); err != nil {
				return nil
			}
		}
		var rv Operator = NewHeapScanRange(rScan.file, start, rScan.file.Pages())
		rv = NewWindow(rv, rCol, kr.Lo, kr.HasLo, kr.Hi, kr.HasHi)
		rv = rebuildChain(rChain, rv)
		j := NewMergeJoin(lv, rv, m.leftKeys, m.rightKeys, nil)
		if m.hasVecGT {
			j.SetVecResidualGT(m.gtLeft, m.gtRight)
		}
		frags[i] = j
	}
	return NewGather(frags, workers)
}
