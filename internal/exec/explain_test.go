package exec

import (
	"strings"
	"testing"

	hp "setm/internal/heap"
	"setm/internal/storage"
	"setm/internal/tuple"
	"setm/internal/xsort"
)

func TestExplainRendersEveryOperator(t *testing.T) {
	pool := storage.NewPool(storage.NewMemStore(), 16)
	f, err := hp.Create(pool, tuple.IntSchema("k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(tuple.Ints(1, 2)); err != nil {
		t.Fatal(err)
	}

	scan := NewHeapScan(f)
	renamed := NewRename(scan, tuple.IntSchema("t.k", "t.v"))
	filtered := NewFilter(renamed, func(tuple.Tuple) (bool, error) { return true, nil })
	sorted := NewSort(filtered, xsort.ByColumns(0), nil, 0)
	right := NewMemScan(tuple.IntSchema("u.k"), []tuple.Tuple{tuple.Ints(1)})
	joined := NewMergeJoin(sorted, right, []int{0}, []int{0}, nil)
	grouped := NewSortGroup(joined, []int{0}, []AggSpec{{Kind: AggCount, Name: "cnt"}})
	projected := NewColumnProject(grouped, []int{0, 1})
	distinct := NewDistinct(projected)
	limited := NewLimit(distinct, 10)

	out := Explain(limited)
	for _, want := range []string{
		"Limit 10", "Distinct", "Project", "SortGroup", "MergeJoin",
		"Sort", "Filter", "Rename", "HeapScan", "MemScan",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects depth: Limit at 0, Distinct at 1.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "Limit") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  Distinct") {
		t.Errorf("second line = %q", lines[1])
	}
}

func TestExplainNestedLoop(t *testing.T) {
	l := NewMemScan(tuple.IntSchema("a"), nil)
	r := NewMemScan(tuple.IntSchema("b"), nil)
	out := Explain(NewNestedLoopJoin(l, r, nil))
	if !strings.Contains(out, "NestedLoopJoin") {
		t.Errorf("missing NestedLoopJoin:\n%s", out)
	}
}

func TestChildAccessors(t *testing.T) {
	base := NewMemScan(tuple.IntSchema("a"), nil)
	if NewFilter(base, nil).Child() != base {
		t.Error("Filter.Child")
	}
	if NewLimit(base, 1).Child() != base {
		t.Error("Limit.Child")
	}
	if NewDistinct(base).Child() != base {
		t.Error("Distinct.Child")
	}
	if NewRename(base, base.Schema()).Child() != base {
		t.Error("Rename.Child")
	}
	if NewSort(base, xsort.ByColumns(0), nil, 0).Child() != base {
		t.Error("Sort.Child")
	}
	if NewColumnProject(base, []int{0}).Child() != base {
		t.Error("Project.Child")
	}
	if NewSortGroup(base, nil, nil).Child() != base {
		t.Error("SortGroup.Child")
	}
	other := NewMemScan(tuple.IntSchema("b"), nil)
	mj := NewMergeJoin(base, other, []int{0}, []int{0}, nil)
	if mj.Left() != base || mj.Right() != other {
		t.Error("MergeJoin Left/Right")
	}
	nl := NewNestedLoopJoin(base, other, nil)
	if nl.Left() != base || nl.Right() != other {
		t.Error("NestedLoopJoin Left/Right")
	}
}
