// Vectorized execution contract. Every operator in this package is both a
// row-at-a-time Operator (the Volcano contract, kept so existing callers
// and tests work unchanged) and a BatchOperator whose NextBatch moves
// ~1024 rows of column vectors per call. The batch path is the native
// implementation; Next is a thin cursor over it.
package exec

import (
	"io"

	"setm/internal/tuple"
)

// BatchOperator is the vectorized pull contract. A batch returned by
// NextBatch is valid only until the next NextBatch or Close call on the
// same operator; producers reuse their buffers. Do not interleave Next and
// NextBatch calls on one operator instance.
type BatchOperator interface {
	// Schema describes the batches produced.
	Schema() *tuple.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// NextBatch returns the next non-empty batch or io.EOF.
	NextBatch() (*tuple.Batch, error)
	// Close releases resources; it must be safe after a failed Open.
	Close() error
}

// asBatchOp returns op's native batch interface, wrapping foreign
// row-only operators in a row-pulling adapter. Every operator in this
// package is batch-native, so the adapter only fires for external
// implementations of Operator.
func asBatchOp(op Operator) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	return &rowBatcher{op: op}
}

// rowBatcher adapts a row-only Operator to the batch contract.
type rowBatcher struct {
	op  Operator
	buf *tuple.Batch
}

func (r *rowBatcher) Schema() *tuple.Schema { return r.op.Schema() }
func (r *rowBatcher) Open() error           { return r.op.Open() }
func (r *rowBatcher) Close() error          { return r.op.Close() }

func (r *rowBatcher) NextBatch() (*tuple.Batch, error) {
	if r.buf == nil {
		r.buf = tuple.NewBatch(r.op.Schema())
	}
	r.buf.Reset()
	for r.buf.Len() < tuple.BatchSize {
		t, err := r.op.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := r.buf.AppendTuple(t); err != nil {
			return nil, err
		}
	}
	if r.buf.Len() == 0 {
		return nil, io.EOF
	}
	return r.buf, nil
}

// rowCursor implements the row-at-a-time adapter over a NextBatch source:
// each operator's Next() drains its own batches one materialized tuple at
// a time.
type rowCursor struct {
	b *tuple.Batch
	i int
}

func (rc *rowCursor) reset() { rc.b, rc.i = nil, 0 }

func (rc *rowCursor) next(src func() (*tuple.Batch, error)) (tuple.Tuple, error) {
	for rc.b == nil || rc.i >= rc.b.Len() {
		b, err := src()
		if err != nil {
			return nil, err
		}
		rc.b, rc.i = b, 0
	}
	t := rc.b.Row(rc.i)
	rc.i++
	return t, nil
}

// batchCursor tracks a row position in a stream of batches pulled from a
// BatchOperator — the shared input-advance state of the join operators.
type batchCursor struct {
	src BatchOperator
	b   *tuple.Batch
	i   int
	eof bool
}

func (c *batchCursor) reset(src BatchOperator) { c.src, c.b, c.i, c.eof = src, nil, 0, false }

// ensure makes (b, i) reference a valid row, pulling batches as needed.
// It returns false at end of input.
func (c *batchCursor) ensure() (bool, error) {
	for !c.eof && (c.b == nil || c.i >= c.b.Len()) {
		b, err := c.src.NextBatch()
		if err == io.EOF {
			c.eof = true
			c.b = nil
			return false, nil
		}
		if err != nil {
			return false, err
		}
		c.b, c.i = b, 0
	}
	return !c.eof, nil
}

// DrainBatches pulls every batch from op (calling Open and Close),
// returning dense copies safe to keep after the operator is closed.
func DrainBatches(op BatchOperator) ([]*tuple.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []*tuple.Batch
	for {
		b, err := op.NextBatch()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if b.Len() > 0 {
			out = append(out, b.Clone())
		}
	}
}

// appendJoinRow appends the concatenation of left's logical row li and
// right's logical row ri to out, whose columns are left's followed by
// right's.
func appendJoinRow(out, left *tuple.Batch, li int, right *tuple.Batch, ri int) {
	lp, rp := left.RowIdx(li), right.RowIdx(ri)
	nl := len(left.Cols)
	for c := range left.Cols {
		appendColValue(&out.Cols[c], &left.Cols[c], lp)
	}
	for c := range right.Cols {
		appendColValue(&out.Cols[nl+c], &right.Cols[c], rp)
	}
	out.BumpRow()
}

// appendJoinRows bulk-appends n join rows pairing left's logical row li
// with right's physical rows [ri, ri+n): the left values repeat, the
// right columns append as slices. right must be dense (no selection) —
// the join's buffered group always is.
func appendJoinRows(out, left *tuple.Batch, li int, right *tuple.Batch, ri, n int) {
	lp := left.RowIdx(li)
	nl := len(left.Cols)
	for c := range left.Cols {
		dst, src := &out.Cols[c], &left.Cols[c]
		if src.Kind == tuple.KindInt {
			v := src.I[lp]
			for k := 0; k < n; k++ {
				dst.I = append(dst.I, v)
			}
		} else {
			v := src.S[lp]
			for k := 0; k < n; k++ {
				dst.S = append(dst.S, v)
			}
		}
	}
	for c := range right.Cols {
		dst, src := &out.Cols[nl+c], &right.Cols[c]
		if src.Kind == tuple.KindInt {
			dst.I = append(dst.I, src.I[ri:ri+n]...)
		} else {
			dst.S = append(dst.S, src.S[ri:ri+n]...)
		}
	}
	out.BumpRows(n)
}

func appendColValue(dst, src *tuple.ColVec, phys int) {
	if src.Kind == tuple.KindInt {
		dst.I = append(dst.I, src.I[phys])
	} else {
		dst.S = append(dst.S, src.S[phys])
	}
}
