package exec

import (
	"io"
	"math/rand"
	"sort"
	"testing"

	"setm/internal/tuple"
)

func sortedPairs(n, keys int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Ints(rng.Int63n(int64(keys)), int64(i))
	}
	sort.Slice(rows, func(i, j int) bool { return tuple.CompareAll(rows[i], rows[j]) < 0 })
	return rows
}

func drainOp(b *testing.B, op Operator) int {
	b.Helper()
	if err := op.Open(); err != nil {
		b.Fatal(err)
	}
	defer op.Close()
	n := 0
	for {
		_, err := op.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			b.Fatal(err)
		}
		n++
	}
}

// BenchmarkMergeJoin measures SETM's central primitive on pre-sorted
// inputs of increasing size.
func BenchmarkMergeJoin(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		left := sortedPairs(n, n/5, 1)
		right := sortedPairs(n, n/5, 2)
		schema := tuple.IntSchema("k", "v")
		b.Run(fmtInt(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := NewMergeJoin(NewMemScan(schema, left), NewMemScan(schema, right),
					[]int{0}, []int{0}, nil)
				drainOp(b, j)
			}
		})
	}
}

// BenchmarkNestedLoopJoin is the quadratic comparator (small sizes only).
func BenchmarkNestedLoopJoin(b *testing.B) {
	for _, n := range []int{100, 1000} {
		left := sortedPairs(n, n/5, 1)
		right := sortedPairs(n, n/5, 2)
		schema := tuple.IntSchema("k", "v")
		b.Run(fmtInt(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := NewNestedLoopJoin(NewMemScan(schema, left), NewMemScan(schema, right),
					func(l, r tuple.Tuple) (bool, error) { return l[0].Int == r[0].Int, nil })
				drainOp(b, j)
			}
		})
	}
}

// BenchmarkSortGroupCount measures the counting scan.
func BenchmarkSortGroupCount(b *testing.B) {
	rows := sortedPairs(100000, 500, 3)
	schema := tuple.IntSchema("k", "v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewSortGroup(NewMemScan(schema, rows), []int{0},
			[]AggSpec{{Kind: AggCount, Name: "cnt"}})
		drainOp(b, g)
	}
}

func fmtInt(n int) string {
	switch {
	case n >= 100000:
		return "100k"
	case n >= 10000:
		return "10k"
	case n >= 1000:
		return "1k"
	default:
		return "100"
	}
}
