package exec

import (
	"fmt"
	"io"

	"setm/internal/tuple"
)

// AggKind enumerates supported aggregate functions.
type AggKind int

const (
	// AggCount is COUNT(*).
	AggCount AggKind = iota
	// AggSum is SUM(col).
	AggSum
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// AggSpec describes one aggregate output column.
type AggSpec struct {
	Kind AggKind
	Col  int    // input column for SUM/MIN/MAX; ignored for COUNT
	Name string // output column name
}

// SortGroup implements sort-based grouping: the input must arrive sorted on
// the group-by columns so each group is a contiguous run. This is exactly
// how SETM generates its C_k count relations — "generating the counts
// involves a simple sequential scan over R'_k" (Section 4.4).
//
// The output schema is the group columns followed by one column per
// aggregate.
type SortGroup struct {
	child     Operator
	groupCols []int
	aggs      []AggSpec
	schema    *tuple.Schema

	// Global marks a grand aggregate (no GROUP BY): an empty input then
	// yields one row of zero aggregates, as SQL requires for COUNT(*).
	Global bool

	lookahead tuple.Tuple
	done      bool
	emitted   bool
}

// NewSortGroup groups a sorted child on groupCols, computing aggs.
func NewSortGroup(child Operator, groupCols []int, aggs []AggSpec) *SortGroup {
	in := child.Schema()
	cols := make([]tuple.Column, 0, len(groupCols)+len(aggs))
	for _, gc := range groupCols {
		cols = append(cols, in.Cols[gc])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = "agg"
		}
		cols = append(cols, tuple.Column{Name: name, Kind: tuple.KindInt})
	}
	return &SortGroup{
		child:     child,
		groupCols: groupCols,
		aggs:      aggs,
		schema:    tuple.NewSchema(cols...),
	}
}

func (g *SortGroup) Schema() *tuple.Schema { return g.schema }

func (g *SortGroup) Open() error {
	g.lookahead = nil
	g.done = false
	g.emitted = false
	return g.child.Open()
}

func (g *SortGroup) Close() error { return g.child.Close() }

func (g *SortGroup) Next() (tuple.Tuple, error) {
	if g.done {
		return nil, io.EOF
	}
	// Pull the first row of the next group.
	first := g.lookahead
	if first == nil {
		t, err := g.child.Next()
		if err == io.EOF {
			g.done = true
			if g.Global && !g.emitted && len(g.groupCols) == 0 {
				// Grand aggregate over zero rows: one row of zero values.
				out := make(tuple.Tuple, len(g.aggs))
				for i := range out {
					out[i] = tuple.I(0)
				}
				g.emitted = true
				return out, nil
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		first = t
	}
	g.emitted = true

	count := int64(0)
	sums := make([]int64, len(g.aggs))
	mins := make([]int64, len(g.aggs))
	maxs := make([]int64, len(g.aggs))
	accumulate := func(t tuple.Tuple) error {
		count++
		for i, a := range g.aggs {
			switch a.Kind {
			case AggCount:
				// count handled globally
			case AggSum, AggMin, AggMax:
				v := t[a.Col]
				if v.Kind != tuple.KindInt {
					return fmt.Errorf("exec: aggregate over non-integer column %d", a.Col)
				}
				if count == 1 {
					sums[i] = v.Int
					mins[i] = v.Int
					maxs[i] = v.Int
				} else {
					sums[i] += v.Int
					if v.Int < mins[i] {
						mins[i] = v.Int
					}
					if v.Int > maxs[i] {
						maxs[i] = v.Int
					}
				}
			}
		}
		return nil
	}
	if err := accumulate(first); err != nil {
		return nil, err
	}

	for {
		t, err := g.child.Next()
		if err == io.EOF {
			g.done = true
			g.lookahead = nil
			break
		}
		if err != nil {
			return nil, err
		}
		if tuple.CompareAt(first, t, g.groupCols) != 0 {
			g.lookahead = t
			break
		}
		if err := accumulate(t); err != nil {
			return nil, err
		}
	}

	out := make(tuple.Tuple, 0, len(g.groupCols)+len(g.aggs))
	for _, gc := range g.groupCols {
		out = append(out, first[gc])
	}
	for i, a := range g.aggs {
		switch a.Kind {
		case AggCount:
			out = append(out, tuple.I(count))
		case AggSum:
			out = append(out, tuple.I(sums[i]))
		case AggMin:
			out = append(out, tuple.I(mins[i]))
		case AggMax:
			out = append(out, tuple.I(maxs[i]))
		}
	}
	return out, nil
}
