package exec

import (
	"fmt"
	"io"

	"setm/internal/tuple"
)

// AggKind enumerates supported aggregate functions.
type AggKind int

const (
	// AggCount is COUNT(*).
	AggCount AggKind = iota
	// AggSum is SUM(col).
	AggSum
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// AggSpec describes one aggregate output column.
type AggSpec struct {
	Kind AggKind
	Col  int    // input column for SUM/MIN/MAX; ignored for COUNT
	Name string // output column name
}

// SortGroup implements sort-based grouping: the input must arrive sorted on
// the group-by columns so each group is a contiguous run. This is exactly
// how SETM generates its C_k count relations — "generating the counts
// involves a simple sequential scan over R'_k" (Section 4.4). The batch
// implementation detects run boundaries with column-vector comparisons and
// emits whole batches of (group, aggregates) rows.
//
// The output preserves the input's group order, so a stream sorted on the
// group columns yields output sorted the same way.
type SortGroup struct {
	child     Operator
	groupCols []int
	aggs      []AggSpec
	schema    *tuple.Schema

	// Global marks a grand aggregate (no GROUP BY): an empty input then
	// yields one row of zero aggregates, as SQL requires for COUNT(*).
	Global bool

	childB BatchOperator
	lb     *tuple.Batch
	li     int
	srcEOF bool

	haveCur bool
	curKey  []tuple.Value
	count   int64
	sums    []int64
	mins    []int64
	maxs    []int64

	emitted bool
	done    bool
	out     *tuple.Batch
	rows    rowCursor

	stats OpStats
}

// NewSortGroup groups a sorted child on groupCols, computing aggs.
func NewSortGroup(child Operator, groupCols []int, aggs []AggSpec) *SortGroup {
	in := child.Schema()
	cols := make([]tuple.Column, 0, len(groupCols)+len(aggs))
	for _, gc := range groupCols {
		cols = append(cols, in.Cols[gc])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = "agg"
		}
		cols = append(cols, tuple.Column{Name: name, Kind: tuple.KindInt})
	}
	return &SortGroup{
		child:     child,
		groupCols: groupCols,
		aggs:      aggs,
		schema:    tuple.NewSchema(cols...),
		childB:    asBatchOp(child),
	}
}

func (g *SortGroup) Schema() *tuple.Schema { return g.schema }

func (g *SortGroup) Open() error {
	g.stats.Reset()
	g.lb, g.li = nil, 0
	g.srcEOF = false
	g.haveCur = false
	g.emitted = false
	g.done = false
	g.rows.reset()
	if g.curKey == nil {
		g.curKey = make([]tuple.Value, len(g.groupCols))
		g.sums = make([]int64, len(g.aggs))
		g.mins = make([]int64, len(g.aggs))
		g.maxs = make([]int64, len(g.aggs))
	}
	return g.child.Open()
}

func (g *SortGroup) Close() error { return g.child.Close() }

// keyMatchesCur reports whether logical row i of b has the current group
// key.
func (g *SortGroup) keyMatchesCur(b *tuple.Batch, i int) bool {
	phys := b.RowIdx(i)
	for k, gc := range g.groupCols {
		col := &b.Cols[gc]
		if col.Kind == tuple.KindInt {
			if g.curKey[k].Kind != tuple.KindInt || col.I[phys] != g.curKey[k].Int {
				return false
			}
		} else if g.curKey[k].Kind != tuple.KindString || col.S[phys] != g.curKey[k].Str {
			return false
		}
	}
	return true
}

// startGroup begins a new group at logical row i of b.
func (g *SortGroup) startGroup(b *tuple.Batch, i int) {
	phys := b.RowIdx(i)
	for k, gc := range g.groupCols {
		col := &b.Cols[gc]
		if col.Kind == tuple.KindInt {
			g.curKey[k] = tuple.I(col.I[phys])
		} else {
			g.curKey[k] = tuple.S(col.S[phys])
		}
	}
	g.count = 0
	g.haveCur = true
}

// accumulate folds logical row i of b into the current group.
func (g *SortGroup) accumulate(b *tuple.Batch, i int) error {
	g.count++
	phys := b.RowIdx(i)
	for ai, a := range g.aggs {
		switch a.Kind {
		case AggCount:
			// count handled globally
		case AggSum, AggMin, AggMax:
			col := &b.Cols[a.Col]
			if col.Kind != tuple.KindInt {
				return fmt.Errorf("exec: aggregate over non-integer column %d", a.Col)
			}
			v := col.I[phys]
			if g.count == 1 {
				g.sums[ai], g.mins[ai], g.maxs[ai] = v, v, v
			} else {
				g.sums[ai] += v
				if v < g.mins[ai] {
					g.mins[ai] = v
				}
				if v > g.maxs[ai] {
					g.maxs[ai] = v
				}
			}
		}
	}
	return nil
}

// flushGroup appends the finished current group to out.
func (g *SortGroup) flushGroup(out *tuple.Batch) {
	for k := range g.groupCols {
		out.Cols[k].AppendValue(g.curKey[k])
	}
	base := len(g.groupCols)
	for ai, a := range g.aggs {
		var v int64
		switch a.Kind {
		case AggCount:
			v = g.count
		case AggSum:
			v = g.sums[ai]
		case AggMin:
			v = g.mins[ai]
		case AggMax:
			v = g.maxs[ai]
		}
		out.Cols[base+ai].I = append(out.Cols[base+ai].I, v)
	}
	out.BumpRow()
	g.emitted = true
	g.haveCur = false
}

func (g *SortGroup) nextBatch() (*tuple.Batch, error) {
	if g.done {
		return nil, io.EOF
	}
	if g.out == nil {
		g.out = tuple.NewBatch(g.schema)
	}
	g.out.Reset()
	for g.out.Len() < tuple.BatchSize {
		// Ensure an input row.
		for !g.srcEOF && (g.lb == nil || g.li >= g.lb.Len()) {
			b, err := g.childB.NextBatch()
			if err == io.EOF {
				g.srcEOF = true
				break
			}
			if err != nil {
				return nil, err
			}
			g.lb, g.li = b, 0
		}
		if g.srcEOF {
			if g.haveCur {
				g.flushGroup(g.out)
			}
			g.done = true
			if g.Global && !g.emitted && len(g.groupCols) == 0 {
				// Grand aggregate over zero rows: one row of zero values.
				for c := range g.out.Cols {
					g.out.Cols[c].I = append(g.out.Cols[c].I, 0)
				}
				g.out.BumpRow()
				g.emitted = true
			}
			break
		}
		if g.haveCur && !g.keyMatchesCur(g.lb, g.li) {
			g.flushGroup(g.out)
			continue // re-check output capacity before starting the next group
		}
		if !g.haveCur {
			g.startGroup(g.lb, g.li)
		}
		if err := g.accumulate(g.lb, g.li); err != nil {
			return nil, err
		}
		g.li++
	}
	if g.out.Len() == 0 {
		return nil, io.EOF
	}
	return g.out, nil
}

func (g *SortGroup) Next() (tuple.Tuple, error) { return g.rows.next(g.NextBatch) }
