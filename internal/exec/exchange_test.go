package exec

import (
	"fmt"
	"math/rand"
	"testing"

	hp "setm/internal/heap"
	"setm/internal/storage"
	"setm/internal/tuple"
)

// heapFile builds a heap file from rows (several pages when rows is large
// enough: ~250 two-int rows per 4 KB page).
func heapFile(t testing.TB, schema *tuple.Schema, rows []tuple.Tuple) *hp.File {
	t.Helper()
	pool := storage.NewPool(storage.NewMemStore(), 64)
	f, err := hp.Create(pool, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	return f
}

func wantRows(t testing.TB, got, want []tuple.Tuple, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// sortedPairs generates n (trans_id, item) rows ascending on trans_id with
// duplicate-key runs, the physical shape of every SETM relation.
func keyRuns(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, 0, n)
	tid := int64(0)
	for len(rows) < n {
		tid += 1 + rng.Int63n(3)
		run := 1 + rng.Intn(6)
		for j := 0; j < run && len(rows) < n; j++ {
			rows = append(rows, tuple.Ints(tid, rng.Int63n(50)))
		}
	}
	return rows
}

func TestGatherPreservesSerialScanOrder(t *testing.T) {
	rows := keyRuns(3000, 1)
	f := heapFile(t, tuple.IntSchema("trans_id", "item"), rows)
	want, err := Drain(NewHeapScan(f))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{2, 3, 4, 7} {
		frags := FragmentScans(NewHeapScan(f), dop)
		if frags == nil {
			t.Fatalf("FragmentScans(dop=%d) = nil for %d-page file", dop, f.Pages())
		}
		g := NewGather(frags, dop)
		got, err := Drain(g)
		if err != nil {
			t.Fatal(err)
		}
		wantRows(t, got, want, fmt.Sprintf("gather dop=%d", dop))
		var sum int64
		for _, r := range g.WorkerRows() {
			sum += r
		}
		if sum != int64(len(want)) {
			t.Fatalf("WorkerRows sum = %d, want %d", sum, len(want))
		}
	}
}

func TestGatherReopen(t *testing.T) {
	rows := keyRuns(1200, 2)
	f := heapFile(t, tuple.IntSchema("a", "b"), rows)
	g := NewGather(FragmentScans(NewHeapScan(f), 3), 3)
	first, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, second, first, "reopened gather")
}

func TestFragmentScansClonesStatelessPipeline(t *testing.T) {
	rows := keyRuns(2500, 3)
	schema := tuple.IntSchema("trans_id", "item")
	f := heapFile(t, schema, rows)
	build := func() Operator {
		even := func(b *tuple.Batch, in, out []int32) ([]int32, error) {
			v := b.Cols[1].I
			for _, i := range in {
				if v[i]%2 == 0 {
					out = append(out, i)
				}
			}
			return out, nil
		}
		var op Operator = NewHeapScan(f)
		op = NewFilterVec(op, []VecPredicate{even}, nil)
		op = NewProjectColumns(op, []int{1, 0}, tuple.IntSchema("item", "trans_id"))
		return NewRename(op, tuple.IntSchema("i", "t"))
	}
	want, err := Drain(build())
	if err != nil {
		t.Fatal(err)
	}
	frags := FragmentScans(build(), 4)
	if frags == nil {
		t.Fatal("FragmentScans rejected a stateless Rename/Project/Filter/HeapScan pipeline")
	}
	got, err := Drain(NewGather(frags, 4))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, want, "fragmented pipeline")
}

func TestFragmentScansRejectsUnsupportedShapes(t *testing.T) {
	rows := keyRuns(2000, 4)
	f := heapFile(t, tuple.IntSchema("a", "b"), rows)
	if FragmentScans(NewHeapScan(f), 1) != nil {
		t.Error("split with n<2 accepted")
	}
	small := heapFile(t, tuple.IntSchema("a", "b"), rows[:10])
	if FragmentScans(NewHeapScan(small), 4) != nil {
		t.Error("single-page file split accepted")
	}
	if FragmentScans(NewHeapScanRange(f, 0, 2), 2) != nil {
		t.Error("already-ranged scan split accepted")
	}
	pred := func(tp tuple.Tuple) (bool, error) { return tp[0].Int%2 == 0, nil }
	if FragmentScans(NewFilter(NewHeapScan(f), pred), 2) != nil {
		t.Error("row-predicate filter split accepted (closures may share scratch)")
	}
	if FragmentScans(NewLimit(NewHeapScan(f), 5), 2) != nil {
		t.Error("Limit split accepted")
	}
}

func TestWindowBounds(t *testing.T) {
	var rows []tuple.Tuple
	for i := int64(0); i < 100; i++ {
		rows = append(rows, tuple.Ints(i/4)) // keys 0..24, runs of 4
	}
	s := NewMemScan(tuple.IntSchema("k"), rows)
	for _, tc := range []struct {
		lo, hi       int64
		hasLo, hasHi bool
		want         int
	}{
		{0, 0, false, false, 100},
		{10, 0, true, false, 60},  // keys 10..24
		{0, 10, false, true, 40},  // keys 0..9
		{5, 7, true, true, 8},     // keys 5, 6
		{25, 0, true, false, 0},   // past the end
		{0, 0, false, true, 0},    // empty upper window
	} {
		got, err := Drain(NewWindow(s, 0, tc.lo, tc.hasLo, tc.hi, tc.hasHi))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != tc.want {
			t.Errorf("window [%d,%d) hasLo=%v hasHi=%v: %d rows, want %d",
				tc.lo, tc.hi, tc.hasLo, tc.hasHi, len(got), tc.want)
		}
	}
}

func TestSplitByKeyPartitionsRowsExactly(t *testing.T) {
	rows := keyRuns(4000, 5)
	f := heapFile(t, tuple.IntSchema("trans_id", "item"), rows)
	for _, n := range []int{2, 3, 4, 8} {
		ranges, err := SplitByKey(f, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		var got []tuple.Tuple
		for _, kr := range ranges {
			part, err := Drain(NewWindow(NewHeapScanRange(f, kr.PageStart, kr.PageEnd),
				0, kr.Lo, kr.HasLo, kr.Hi, kr.HasHi))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
		}
		wantRows(t, got, rows, fmt.Sprintf("SplitByKey n=%d (%d ranges)", n, len(ranges)))
	}
}

func TestProbeRangeFindsLowerBoundPage(t *testing.T) {
	rows := keyRuns(4000, 6)
	f := heapFile(t, tuple.IntSchema("trans_id", "item"), rows)
	for lo := int64(0); lo < 200; lo += 17 {
		start, err := ProbeRange(f, 0, lo, true)
		if err != nil {
			t.Fatal(err)
		}
		// Every row with key >= lo must live at or after page start.
		got, err := Drain(NewWindow(NewHeapScanRange(f, start, f.Pages()), 0, lo, true, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		var want []tuple.Tuple
		for _, r := range rows {
			if r[0].Int >= lo {
				want = append(want, r)
			}
		}
		wantRows(t, got, want, fmt.Sprintf("ProbeRange lo=%d start=%d", lo, start))
	}
	if start, err := ProbeRange(f, 0, 0, false); err != nil || start != 0 {
		t.Errorf("ProbeRange without lower bound = (%d, %v), want (0, nil)", start, err)
	}
}

func TestRepartitionDeterministicAcrossWorkers(t *testing.T) {
	rows := keyRuns(3000, 7)
	f := heapFile(t, tuple.IntSchema("trans_id", "item"), rows)
	drain := func(workers int) []tuple.Tuple {
		frags := FragmentScans(NewHeapScan(f), 4)
		got, err := Drain(NewRepartition(frags, []int{0}, 8, workers))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := drain(1)
	if len(want) != len(rows) {
		t.Fatalf("repartition emitted %d rows, want %d", len(want), len(rows))
	}
	for _, w := range []int{2, 4} {
		wantRows(t, drain(w), want, fmt.Sprintf("repartition workers=%d", w))
	}
}

func TestSplitMergeJoinBitIdentical(t *testing.T) {
	left := keyRuns(3000, 8)
	right := keyRuns(5000, 9)
	lf := heapFile(t, tuple.IntSchema("trans_id", "item"), left)
	rf := heapFile(t, tuple.IntSchema("trans_id", "item"), right)
	for _, gt := range []bool{false, true} {
		serial := NewMergeJoin(NewHeapScan(lf), NewHeapScan(rf), []int{0}, []int{0}, nil)
		if gt {
			serial.SetVecResidualGT(1, 1)
		}
		want, err := Drain(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			m := NewMergeJoin(NewHeapScan(lf), NewHeapScan(rf), []int{0}, []int{0}, nil)
			if gt {
				m.SetVecResidualGT(1, 1)
			}
			g := SplitMergeJoin(m, workers)
			if g == nil {
				t.Fatalf("SplitMergeJoin(workers=%d, gt=%v) = nil", workers, gt)
			}
			got, err := Drain(g)
			if err != nil {
				t.Fatal(err)
			}
			wantRows(t, got, want, fmt.Sprintf("split merge join workers=%d gt=%v", workers, gt))
		}
	}
}

func TestSplitMergeJoinRejectsUnsupportedShapes(t *testing.T) {
	rows := keyRuns(2000, 10)
	f := heapFile(t, tuple.IntSchema("trans_id", "item"), rows)
	m := NewMergeJoin(NewHeapScan(f), NewHeapScan(f), []int{0}, []int{0}, nil)
	if SplitMergeJoin(m, 1) != nil {
		t.Error("workers<2 accepted")
	}
	resid := NewMergeJoin(NewHeapScan(f), NewHeapScan(f), []int{0}, []int{0},
		func(l, r tuple.Tuple) (bool, error) { return true, nil })
	if SplitMergeJoin(resid, 4) != nil {
		t.Error("row residual accepted (closure may share scratch)")
	}
	sorted := NewMergeJoin(NewSortKeys(NewHeapScan(f), []SortKey{{Col: 0}}, nil, 0),
		NewHeapScan(f), []int{0}, []int{0}, nil)
	if SplitMergeJoin(sorted, 4) != nil {
		t.Error("non-scan-pipeline input accepted")
	}
}

func TestParallelGroupMatchesSortGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rows []tuple.Tuple
	for i := 0; i < 5000; i++ {
		rows = append(rows, tuple.Ints(rng.Int63n(97), rng.Int63n(13), rng.Int63n(1000)))
	}
	schema := tuple.IntSchema("a", "b", "v")
	f := heapFile(t, schema, rows)
	specs := []AggSpec{
		{Kind: AggCount, Name: "cnt"},
		{Kind: AggSum, Col: 2, Name: "s"},
		{Kind: AggMin, Col: 2, Name: "mn"},
		{Kind: AggMax, Col: 2, Name: "mx"},
	}
	groupCols := []int{0, 1}
	sorted := NewSortKeys(NewHeapScan(f), []SortKey{{Col: 0}, {Col: 1}}, nil, 0)
	want, err := Drain(NewSortGroup(sorted, groupCols, specs))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{1, 2, 4} {
		frags := FragmentScans(NewHeapScan(f), dop)
		if frags == nil {
			frags = []Operator{NewHeapScan(f)}
		}
		got, err := Drain(NewParallelGroup(frags, groupCols, specs, dop))
		if err != nil {
			t.Fatal(err)
		}
		wantRows(t, got, want, fmt.Sprintf("ParallelGroup dop=%d", dop))
	}
}

func TestParallelSortMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var rows []tuple.Tuple
	for i := 0; i < 6000; i++ {
		rows = append(rows, tuple.Ints(rng.Int63n(500), rng.Int63n(50), int64(i)))
	}
	schema := tuple.IntSchema("a", "b", "payload")
	f := heapFile(t, schema, rows)
	keys := []SortKey{{Col: 0}, {Col: 1}}
	want, err := Drain(NewSortKeys(NewHeapScan(f), keys, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{2, 4} {
		frags := FragmentScans(NewHeapScan(f), dop)
		par := NewSortKeys(NewGather(frags, dop), keys, nil, 0)
		par.SetParallel(dop)
		got, err := Drain(par)
		if err != nil {
			t.Fatal(err)
		}
		// Payload column makes the comparison order-sensitive on ties: the
		// parallel permutation must equal the serial (input-order) one.
		wantRows(t, got, want, fmt.Sprintf("parallel sort dop=%d", dop))
	}
}

func TestSortSkipsAlreadySortedInput(t *testing.T) {
	rows := keyRuns(3000, 13)
	f := heapFile(t, tuple.IntSchema("trans_id", "item"), rows)
	got, err := Drain(NewSortKeys(NewHeapScan(f), []SortKey{{Col: 0}}, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Single-key sorted input: output must be the identity permutation —
	// item values stay in input order within equal trans_id runs.
	wantRows(t, got, rows, "sort of pre-sorted input")
}

// FuzzExecParallel feeds random tables through the parallel operators and
// checks each against its serial equivalent: Gather vs serial scan,
// ParallelGroup vs sort+SortGroup, split merge join vs serial merge join.
func FuzzExecParallel(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(50))
	f.Add(int64(2), uint8(2), uint8(3))
	f.Add(int64(3), uint8(7), uint8(120))
	f.Fuzz(func(t *testing.T, seed int64, workers, keyDomain uint8) {
		dop := int(workers%7) + 2
		dom := int64(keyDomain)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(4000)
		rows := make([]tuple.Tuple, 0, n)
		tid := int64(0)
		for len(rows) < n {
			tid += 1 + rng.Int63n(2)
			run := 1 + rng.Intn(4)
			for j := 0; j < run && len(rows) < n; j++ {
				rows = append(rows, tuple.Ints(tid, rng.Int63n(dom)))
			}
		}
		schema := tuple.IntSchema("trans_id", "item")
		hf := heapFile(t, schema, rows)

		want, err := Drain(NewHeapScan(hf))
		if err != nil {
			t.Fatal(err)
		}
		if frags := FragmentScans(NewHeapScan(hf), dop); frags != nil {
			got, err := Drain(NewGather(frags, dop))
			if err != nil {
				t.Fatal(err)
			}
			wantRows(t, got, want, "fuzz gather")
		}

		specs := []AggSpec{{Kind: AggCount, Name: "cnt"}, {Kind: AggMax, Col: 0, Name: "mx"}}
		sorted := NewSortKeys(NewHeapScan(hf), []SortKey{{Col: 1}}, nil, 0)
		wantG, err := Drain(NewSortGroup(sorted, []int{1}, specs))
		if err != nil {
			t.Fatal(err)
		}
		frags := FragmentScans(NewHeapScan(hf), dop)
		if frags == nil {
			frags = []Operator{NewHeapScan(hf)}
		}
		gotG, err := Drain(NewParallelGroup(frags, []int{1}, specs, dop))
		if err != nil {
			t.Fatal(err)
		}
		wantRows(t, gotG, wantG, "fuzz parallel group")

		serial := NewMergeJoin(NewHeapScan(hf), NewHeapScan(hf), []int{0}, []int{0}, nil)
		serial.SetVecResidualGT(1, 1)
		wantJ, err := Drain(serial)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMergeJoin(NewHeapScan(hf), NewHeapScan(hf), []int{0}, []int{0}, nil)
		m.SetVecResidualGT(1, 1)
		if g := SplitMergeJoin(m, dop); g != nil {
			gotJ, err := Drain(g)
			if err != nil {
				t.Fatal(err)
			}
			wantRows(t, gotJ, wantJ, "fuzz split merge join")
		}
	})
}
