package exec

import (
	"fmt"
	"io"

	"setm/internal/tuple"
)

// HashJoin is an equi-join that builds an in-memory hash table on the
// right input and probes it with the left. The paper predates the
// ubiquity of hash joins in commercial optimizers; this operator exists as
// the ablation DESIGN.md calls out — SETM's extension step with hashing
// instead of merge-scan — quantifying what the sort-merge formulation
// costs or saves.
type HashJoin struct {
	left, right Operator
	leftKeys    []int
	rightKeys   []int
	residual    JoinPredicate
	schema      *tuple.Schema

	table   map[string][]tuple.Tuple
	leftRow tuple.Tuple
	bucket  []tuple.Tuple
	bi      int
	keyBuf  []byte
}

// NewHashJoin joins left and right on equality of the key columns.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int, residual JoinPredicate) *HashJoin {
	return &HashJoin{
		left:      left,
		right:     right,
		leftKeys:  leftKeys,
		rightKeys: rightKeys,
		residual:  residual,
		schema:    left.Schema().Concat(right.Schema()),
	}
}

func (h *HashJoin) Schema() *tuple.Schema { return h.schema }

func (h *HashJoin) key(t tuple.Tuple, cols []int) (string, error) {
	h.keyBuf = h.keyBuf[:0]
	for _, c := range cols {
		v := t[c]
		switch v.Kind {
		case tuple.KindInt:
			for s := 0; s < 64; s += 8 {
				h.keyBuf = append(h.keyBuf, byte(v.Int>>s))
			}
		case tuple.KindString:
			h.keyBuf = append(h.keyBuf, v.Str...)
			h.keyBuf = append(h.keyBuf, 0)
		default:
			return "", fmt.Errorf("exec: unhashable value kind %v", v.Kind)
		}
	}
	return string(h.keyBuf), nil
}

func (h *HashJoin) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = make(map[string][]tuple.Tuple)
	for {
		t, err := h.right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		k, err := h.key(t, h.rightKeys)
		if err != nil {
			return err
		}
		h.table[k] = append(h.table[k], t)
	}
	h.leftRow = nil
	h.bucket = nil
	h.bi = 0
	return nil
}

func (h *HashJoin) Close() error {
	err1 := h.left.Close()
	err2 := h.right.Close()
	h.table = nil
	if err1 != nil {
		return err1
	}
	return err2
}

func (h *HashJoin) Next() (tuple.Tuple, error) {
	for {
		for h.bi < len(h.bucket) {
			r := h.bucket[h.bi]
			h.bi++
			if h.residual != nil {
				ok, err := h.residual(h.leftRow, r)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out := make(tuple.Tuple, 0, len(h.leftRow)+len(r))
			out = append(out, h.leftRow...)
			out = append(out, r...)
			return out, nil
		}
		t, err := h.left.Next()
		if err != nil {
			return nil, err
		}
		k, err := h.key(t, h.leftKeys)
		if err != nil {
			return nil, err
		}
		h.leftRow = t
		h.bucket = h.table[k]
		h.bi = 0
	}
}

// HashGroup computes grouped aggregates with an in-memory hash table
// instead of a pre-sorted input — the hash-based alternative to SortGroup
// for the same ablation. Output order is unspecified.
type HashGroup struct {
	child     Operator
	groupCols []int
	aggs      []AggSpec
	schema    *tuple.Schema

	out []tuple.Tuple
	pos int
}

type hashGroupState struct {
	rep   tuple.Tuple
	count int64
	sums  []int64
	mins  []int64
	maxs  []int64
}

// NewHashGroup groups child on groupCols, computing aggs.
func NewHashGroup(child Operator, groupCols []int, aggs []AggSpec) *HashGroup {
	in := child.Schema()
	cols := make([]tuple.Column, 0, len(groupCols)+len(aggs))
	for _, gc := range groupCols {
		cols = append(cols, in.Cols[gc])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = "agg"
		}
		cols = append(cols, tuple.Column{Name: name, Kind: tuple.KindInt})
	}
	return &HashGroup{
		child:     child,
		groupCols: groupCols,
		aggs:      aggs,
		schema:    tuple.NewSchema(cols...),
	}
}

func (g *HashGroup) Schema() *tuple.Schema { return g.schema }

// Child returns the wrapped input.
func (g *HashGroup) Child() Operator { return g.child }

func (g *HashGroup) Open() error {
	if err := g.child.Open(); err != nil {
		return err
	}
	defer g.child.Close()

	groups := make(map[string]*hashGroupState)
	var order []string // deterministic output: first-seen order
	var keyBuf []byte
	for {
		t, err := g.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		keyBuf = keyBuf[:0]
		for _, c := range g.groupCols {
			v := t[c]
			if v.Kind == tuple.KindInt {
				for s := 0; s < 64; s += 8 {
					keyBuf = append(keyBuf, byte(v.Int>>s))
				}
			} else {
				keyBuf = append(keyBuf, v.Str...)
				keyBuf = append(keyBuf, 0)
			}
		}
		key := string(keyBuf)
		st, ok := groups[key]
		if !ok {
			st = &hashGroupState{
				rep:  t,
				sums: make([]int64, len(g.aggs)),
				mins: make([]int64, len(g.aggs)),
				maxs: make([]int64, len(g.aggs)),
			}
			groups[key] = st
			order = append(order, key)
		}
		st.count++
		for i, a := range g.aggs {
			switch a.Kind {
			case AggSum, AggMin, AggMax:
				v := t[a.Col]
				if v.Kind != tuple.KindInt {
					return fmt.Errorf("exec: aggregate over non-integer column %d", a.Col)
				}
				if st.count == 1 {
					st.sums[i], st.mins[i], st.maxs[i] = v.Int, v.Int, v.Int
				} else {
					st.sums[i] += v.Int
					if v.Int < st.mins[i] {
						st.mins[i] = v.Int
					}
					if v.Int > st.maxs[i] {
						st.maxs[i] = v.Int
					}
				}
			}
		}
	}

	g.out = g.out[:0]
	for _, key := range order {
		st := groups[key]
		row := make(tuple.Tuple, 0, len(g.groupCols)+len(g.aggs))
		for _, c := range g.groupCols {
			row = append(row, st.rep[c])
		}
		for i, a := range g.aggs {
			switch a.Kind {
			case AggCount:
				row = append(row, tuple.I(st.count))
			case AggSum:
				row = append(row, tuple.I(st.sums[i]))
			case AggMin:
				row = append(row, tuple.I(st.mins[i]))
			case AggMax:
				row = append(row, tuple.I(st.maxs[i]))
			}
		}
		g.out = append(g.out, row)
	}
	g.pos = 0
	return nil
}

func (g *HashGroup) Next() (tuple.Tuple, error) {
	if g.pos >= len(g.out) {
		return nil, io.EOF
	}
	t := g.out[g.pos]
	g.pos++
	return t, nil
}

func (g *HashGroup) Close() error { return nil }
