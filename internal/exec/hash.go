package exec

import (
	"fmt"
	"io"
	"sync"

	"setm/internal/tuple"
)

// HashJoin is an equi-join that builds an in-memory hash table on the
// right input and probes it with the left. The paper predates the
// ubiquity of hash joins in commercial optimizers; the cost-based planner
// picks it when the build side is small and the inputs are not already
// sorted on the join keys — SETM's support-filter join (R'_k ⋈ C_k) is the
// canonical case. Because each left row's matches are emitted
// contiguously in left order, the output preserves any ordering of the
// left input on left columns.
type HashJoin struct {
	left, right Operator
	leftKeys    []int
	rightKeys   []int
	residual    JoinPredicate
	schema      *tuple.Schema

	buildWorkers int // >1: partitioned parallel build
	buildHint    int // expected build rows, pre-sizes store and table

	leftB  BatchOperator
	store  *tuple.Batch         // materialized right input
	tables []map[string][]int32 // partition -> key bytes -> right row indexes

	lcur    batchCursor
	bucket  []int32
	bi      int
	probing bool // bucket/bi are valid for the current left row

	keyBuf             []byte
	out                *tuple.Batch
	lscratch, rscratch tuple.Tuple
	rows               rowCursor

	stats OpStats
}

// NewHashJoin joins left and right on equality of the key columns.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int, residual JoinPredicate) *HashJoin {
	return &HashJoin{
		left:      left,
		right:     right,
		leftKeys:  leftKeys,
		rightKeys: rightKeys,
		residual:  residual,
		schema:    left.Schema().Concat(right.Schema()),
		leftB:     asBatchOp(left),
	}
}

func (h *HashJoin) Schema() *tuple.Schema { return h.schema }

// SetBuildSizeHint pre-sizes the build-side store and hash table for n
// rows.
func (h *HashJoin) SetBuildSizeHint(n int) { h.buildHint = n }

// SetBuildWorkers partitions the hash-table build over w goroutines: the
// build input is materialized once (serially, keeping row order), then
// each worker builds the table partition owning hash(key) mod w. Bucket
// lists are identical to a serial build — every key lives in exactly one
// partition and each partition inserts in store order — so probe output
// is unchanged for any w.
func (h *HashJoin) SetBuildWorkers(w int) { h.buildWorkers = w }

// BuildWorkers returns the partitioned-build worker count (for EXPLAIN).
func (h *HashJoin) BuildWorkers() int { return h.buildWorkers }

// keyPartition maps a serialized key to a table partition.
func keyPartition(key []byte, parts int) int {
	var fnv uint64 = 1469598103934665603
	for _, c := range key {
		fnv ^= uint64(c)
		fnv *= 1099511628211
	}
	return int(fnv % uint64(parts))
}

// appendKey serializes the key columns of b's logical row i into buf.
func appendKey(buf []byte, b *tuple.Batch, i int, cols []int) ([]byte, error) {
	phys := b.RowIdx(i)
	for _, c := range cols {
		col := &b.Cols[c]
		switch col.Kind {
		case tuple.KindInt:
			v := col.I[phys]
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(v>>s))
			}
		case tuple.KindString:
			buf = append(buf, col.S[phys]...)
			buf = append(buf, 0)
		default:
			return nil, fmt.Errorf("exec: unhashable value kind %v", col.Kind)
		}
	}
	return buf, nil
}

func (h *HashJoin) Open() error {
	h.stats.Reset()
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	h.store = tuple.NewBatch(h.right.Schema())
	if h.buildHint > 0 {
		h.store.Grow(h.buildHint)
	}
	rightB := asBatchOp(h.right)
	for {
		b, err := rightB.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		h.store.Append(b)
	}
	parts := h.buildWorkers
	if parts < 1 {
		parts = 1
	}
	h.tables = make([]map[string][]int32, parts)
	rows := h.store.Len()
	if parts == 1 {
		t := make(map[string][]int32, h.buildHint)
		var err error
		for i := 0; i < rows; i++ {
			h.keyBuf, err = appendKey(h.keyBuf[:0], h.store, i, h.rightKeys)
			if err != nil {
				return err
			}
			t[string(h.keyBuf)] = append(t[string(h.keyBuf)], int32(i))
		}
		h.tables[0] = t
	} else {
		errs := make([]error, parts)
		var wg sync.WaitGroup
		wg.Add(parts)
		for w := 0; w < parts; w++ {
			go func(w int) {
				defer wg.Done()
				t := make(map[string][]int32, h.buildHint/parts)
				var buf []byte
				for i := 0; i < rows; i++ {
					var err error
					buf, err = appendKey(buf[:0], h.store, i, h.rightKeys)
					if err != nil {
						errs[w] = err
						return
					}
					if keyPartition(buf, parts) == w {
						t[string(buf)] = append(t[string(buf)], int32(i))
					}
				}
				h.tables[w] = t
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	h.lcur.reset(h.leftB)
	h.probing = false
	h.rows.reset()
	return nil
}

func (h *HashJoin) Close() error {
	err1 := h.left.Close()
	err2 := h.right.Close()
	h.tables = nil
	h.store = nil
	if err1 != nil {
		return err1
	}
	return err2
}

func (h *HashJoin) nextBatch() (*tuple.Batch, error) {
	if h.out == nil {
		h.out = tuple.NewBatch(h.schema)
	}
	h.out.Reset()
	for h.out.Len() < tuple.BatchSize {
		ok, err := h.lcur.ensure()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if !h.probing {
			h.keyBuf, err = appendKey(h.keyBuf[:0], h.lcur.b, h.lcur.i, h.leftKeys)
			if err != nil {
				return nil, err
			}
			t := h.tables[0]
			if len(h.tables) > 1 {
				t = h.tables[keyPartition(h.keyBuf, len(h.tables))]
			}
			h.bucket = t[string(h.keyBuf)]
			h.bi = 0
			h.probing = true
		}
		for h.bi < len(h.bucket) && h.out.Len() < tuple.BatchSize {
			ri := int(h.bucket[h.bi])
			pass := true
			if h.residual != nil {
				if h.lscratch == nil {
					h.lscratch = make(tuple.Tuple, h.left.Schema().Len())
					h.rscratch = make(tuple.Tuple, h.right.Schema().Len())
				}
				pass, err = h.residual(h.lcur.b.RowInto(h.lscratch, h.lcur.i), h.store.RowInto(h.rscratch, ri))
				if err != nil {
					return nil, err
				}
			}
			if pass {
				appendJoinRow(h.out, h.lcur.b, h.lcur.i, h.store, ri)
			}
			h.bi++
		}
		if h.bi >= len(h.bucket) {
			h.lcur.i++
			h.probing = false
		} else {
			break
		}
	}
	if h.out.Len() == 0 {
		return nil, io.EOF
	}
	return h.out, nil
}

func (h *HashJoin) Next() (tuple.Tuple, error) { return h.rows.next(h.NextBatch) }

// HashGroup computes grouped aggregates with an in-memory hash table
// instead of a pre-sorted input — the hash-based alternative to SortGroup
// for the same ablation. Output order is unspecified (first-seen in
// practice).
type HashGroup struct {
	child     Operator
	groupCols []int
	aggs      []AggSpec
	schema    *tuple.Schema

	childB  BatchOperator
	out     []tuple.Tuple
	pos     int
	buf     *tuple.Batch
	scratch tuple.Tuple

	stats OpStats
}

type hashGroupState struct {
	rep   tuple.Tuple
	count int64
	sums  []int64
	mins  []int64
	maxs  []int64
}

// NewHashGroup groups child on groupCols, computing aggs.
func NewHashGroup(child Operator, groupCols []int, aggs []AggSpec) *HashGroup {
	in := child.Schema()
	cols := make([]tuple.Column, 0, len(groupCols)+len(aggs))
	for _, gc := range groupCols {
		cols = append(cols, in.Cols[gc])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = "agg"
		}
		cols = append(cols, tuple.Column{Name: name, Kind: tuple.KindInt})
	}
	return &HashGroup{
		child:     child,
		groupCols: groupCols,
		aggs:      aggs,
		schema:    tuple.NewSchema(cols...),
		childB:    asBatchOp(child),
	}
}

func (g *HashGroup) Schema() *tuple.Schema { return g.schema }

// Child returns the wrapped input.
func (g *HashGroup) Child() Operator { return g.child }

func (g *HashGroup) Open() error {
	g.stats.Reset()
	if err := g.child.Open(); err != nil {
		return err
	}
	defer g.child.Close()

	if g.scratch == nil {
		g.scratch = make(tuple.Tuple, g.child.Schema().Len())
	}
	groups := make(map[string]*hashGroupState)
	var order []string // deterministic output: first-seen order
	var keyBuf []byte
	for {
		b, err := g.childB.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			keyBuf, err = appendKey(keyBuf[:0], b, i, g.groupCols)
			if err != nil {
				return err
			}
			key := string(keyBuf)
			st, ok := groups[key]
			if !ok {
				st = &hashGroupState{
					rep:  b.Row(i),
					sums: make([]int64, len(g.aggs)),
					mins: make([]int64, len(g.aggs)),
					maxs: make([]int64, len(g.aggs)),
				}
				groups[key] = st
				order = append(order, key)
			}
			st.count++
			for ai, a := range g.aggs {
				switch a.Kind {
				case AggSum, AggMin, AggMax:
					col := &b.Cols[a.Col]
					if col.Kind != tuple.KindInt {
						return fmt.Errorf("exec: aggregate over non-integer column %d", a.Col)
					}
					v := col.I[b.RowIdx(i)]
					if st.count == 1 {
						st.sums[ai], st.mins[ai], st.maxs[ai] = v, v, v
					} else {
						st.sums[ai] += v
						if v < st.mins[ai] {
							st.mins[ai] = v
						}
						if v > st.maxs[ai] {
							st.maxs[ai] = v
						}
					}
				}
			}
		}
	}

	g.out = g.out[:0]
	for _, key := range order {
		st := groups[key]
		row := make(tuple.Tuple, 0, len(g.groupCols)+len(g.aggs))
		for _, c := range g.groupCols {
			row = append(row, st.rep[c])
		}
		for ai, a := range g.aggs {
			switch a.Kind {
			case AggCount:
				row = append(row, tuple.I(st.count))
			case AggSum:
				row = append(row, tuple.I(st.sums[ai]))
			case AggMin:
				row = append(row, tuple.I(st.mins[ai]))
			case AggMax:
				row = append(row, tuple.I(st.maxs[ai]))
			}
		}
		g.out = append(g.out, row)
	}
	g.pos = 0
	return nil
}

func (g *HashGroup) Next() (tuple.Tuple, error) {
	if g.pos >= len(g.out) {
		return nil, io.EOF
	}
	t := g.out[g.pos]
	g.pos++
	return t, nil
}

func (g *HashGroup) nextBatch() (*tuple.Batch, error) {
	if g.pos >= len(g.out) {
		return nil, io.EOF
	}
	if g.buf == nil {
		g.buf = tuple.NewBatch(g.schema)
	}
	g.buf.Reset()
	for g.pos < len(g.out) && g.buf.Len() < tuple.BatchSize {
		if err := g.buf.AppendTuple(g.out[g.pos]); err != nil {
			return nil, err
		}
		g.pos++
	}
	return g.buf, nil
}

func (g *HashGroup) Close() error { return nil }
