// Package exec implements the query-execution operators of the engine:
// scans, filter, project, sort, merge-scan join, nested-loop join,
// sort-based group/count, distinct, and limit.
//
// Since PR 3 the operators are vectorized: data moves as tuple.Batch
// column vectors (~1024 rows per pull) through the NextBatch contract,
// with the classic Volcano Next retained as a thin row-at-a-time adapter.
// The merge-scan join and sort operators are the two primitives the paper
// reduces Algorithm SETM to (Section 4.4); the nested-loop join exists so
// the rejected Section 3 strategy can be executed and measured rather than
// only modelled.
package exec

import (
	"fmt"
	"io"
	"math/bits"
	"slices"
	"sync"

	hp "setm/internal/heap"
	"setm/internal/storage"
	"setm/internal/tuple"
	"setm/internal/xsort"
)

// Operator is a pull-based tuple stream. The contract follows the Volcano
// model: Open prepares the stream, Next returns tuples until io.EOF, Close
// releases resources. Operators are single-use unless documented otherwise.
// Every operator in this package also implements BatchOperator; the two
// pull styles must not be mixed on one instance.
type Operator interface {
	// Schema describes the tuples produced.
	Schema() *tuple.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// Next returns the next tuple or io.EOF.
	Next() (tuple.Tuple, error)
	// Close releases resources; it must be safe after a failed Open.
	Close() error
}

// Drain pulls every tuple from op (calling Open and Close) into memory.
func Drain(op Operator) ([]tuple.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Tuple
	for {
		t, err := op.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// Materialize streams op into a fresh heap file in pool, moving data as
// batches end to end.
func Materialize(pool *storage.Pool, op Operator) (*hp.File, error) {
	bop := asBatchOp(op)
	if err := bop.Open(); err != nil {
		return nil, err
	}
	defer bop.Close()
	f, err := hp.Create(pool, op.Schema())
	if err != nil {
		return nil, err
	}
	for {
		b, err := bop.NextBatch()
		if err == io.EOF {
			return f, nil
		}
		if err != nil {
			return nil, err
		}
		if err := f.AppendBatch(b); err != nil {
			return nil, err
		}
	}
}

// ---------------------------------------------------------------------------
// Scans

// HeapScan reads a heap file front to back, decoding records directly into
// column vectors.
type HeapScan struct {
	file       *hp.File
	start, end int // page range; end == 0 means the whole file
	sc         *hp.Scanner
	buf        *tuple.Batch
	rows       rowCursor

	stats OpStats
}

// NewHeapScan returns a scan over f.
func NewHeapScan(f *hp.File) *HeapScan { return &HeapScan{file: f} }

// NewHeapScanRange returns a scan over pages [start, end) of f — one
// morsel of a parallel fragment.
func NewHeapScanRange(f *hp.File, start, end int) *HeapScan {
	return &HeapScan{file: f, start: start, end: end}
}

// PageRange reports the scan's page range for EXPLAIN; full == true means
// the whole file.
func (s *HeapScan) PageRange() (start, end int, full bool) {
	return s.start, s.end, s.end == 0
}

func (s *HeapScan) Schema() *tuple.Schema { return s.file.Schema() }

func (s *HeapScan) Open() error {
	s.stats.Reset()
	if s.end > 0 {
		s.sc = s.file.ScanRange(s.start, s.end)
	} else {
		s.sc = s.file.Scan()
	}
	if s.buf == nil {
		s.buf = tuple.NewBatch(s.file.Schema())
	}
	s.rows.reset()
	return nil
}

func (s *HeapScan) nextBatch() (*tuple.Batch, error) {
	if s.sc == nil {
		return nil, io.EOF
	}
	s.buf.Reset()
	if _, err := s.sc.NextBatch(s.buf, tuple.BatchSize); err != nil {
		return nil, err
	}
	return s.buf, nil
}

func (s *HeapScan) Next() (tuple.Tuple, error) { return s.rows.next(s.NextBatch) }

func (s *HeapScan) Close() error {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	return nil
}

// MemScan streams an in-memory tuple slice.
type MemScan struct {
	schema *tuple.Schema
	rows   []tuple.Tuple
	pos    int
	buf    *tuple.Batch

	stats OpStats
}

// NewMemScan returns a scan over rows.
func NewMemScan(schema *tuple.Schema, rows []tuple.Tuple) *MemScan {
	return &MemScan{schema: schema, rows: rows}
}

func (s *MemScan) Schema() *tuple.Schema { return s.schema }
func (s *MemScan) Open() error           { s.stats.Reset(); s.pos = 0; return nil }

func (s *MemScan) Next() (tuple.Tuple, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	t := s.rows[s.pos]
	s.pos++
	return t, nil
}

func (s *MemScan) nextBatch() (*tuple.Batch, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	if s.buf == nil {
		s.buf = tuple.NewBatch(s.schema)
	}
	s.buf.Reset()
	for s.pos < len(s.rows) && s.buf.Len() < tuple.BatchSize {
		if err := s.buf.AppendTuple(s.rows[s.pos]); err != nil {
			return nil, err
		}
		s.pos++
	}
	return s.buf, nil
}

func (s *MemScan) Close() error { return nil }

// Rename passes tuples through unchanged under a different schema; the
// planner uses it to qualify base-table column names with FROM-clause
// bindings ("sales r1" exposes columns "r1.trans_id", "r1.item").
type Rename struct {
	child  Operator
	schema *tuple.Schema
	childB BatchOperator
	rows   rowCursor

	stats OpStats
}

// NewRename wraps child with the given schema (which must have the same
// arity as the child's).
func NewRename(child Operator, schema *tuple.Schema) *Rename {
	return &Rename{child: child, schema: schema, childB: asBatchOp(child)}
}

func (r *Rename) Schema() *tuple.Schema { return r.schema }
func (r *Rename) Open() error           { r.stats.Reset(); r.rows.reset(); return r.child.Open() }
func (r *Rename) Close() error          { return r.child.Close() }

func (r *Rename) nextBatch() (*tuple.Batch, error) {
	b, err := r.childB.NextBatch()
	if err != nil {
		return nil, err
	}
	return b.WithSchema(r.schema), nil
}

func (r *Rename) Next() (tuple.Tuple, error) { return r.rows.next(r.NextBatch) }

// ---------------------------------------------------------------------------
// Filter / Project / Limit / Distinct

// Predicate decides whether a tuple passes a filter.
type Predicate func(tuple.Tuple) (bool, error)

// VecPredicate is a vectorized predicate: given the live physical rows of
// b (`in`, nil meaning all physical rows), it appends the surviving
// physical rows to out and returns it. The planner compiles simple integer
// comparisons (column vs column, column vs constant) to this form.
type VecPredicate func(b *tuple.Batch, in, out []int32) ([]int32, error)

// Filter passes through tuples satisfying its predicates. Vectorized
// conjuncts run first, producing a selection vector without copying; a
// residual row predicate (if any) is applied per surviving row.
type Filter struct {
	child Operator
	pred  Predicate
	vecs  []VecPredicate

	childB  BatchOperator
	selBuf  []int32
	selBuf2 []int32
	scratch tuple.Tuple
	rows    rowCursor

	stats OpStats
}

// NewFilter wraps child with row predicate pred.
func NewFilter(child Operator, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred, childB: asBatchOp(child)}
}

// NewFilterVec wraps child with vectorized conjuncts and an optional
// residual row predicate (either may be nil/empty).
func NewFilterVec(child Operator, vecs []VecPredicate, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred, vecs: vecs, childB: asBatchOp(child)}
}

func (f *Filter) Schema() *tuple.Schema { return f.child.Schema() }
func (f *Filter) Open() error           { f.stats.Reset(); f.rows.reset(); return f.child.Open() }
func (f *Filter) Close() error          { return f.child.Close() }

// Vectorized reports how many of the filter's conjuncts run vectorized
// (for EXPLAIN output).
func (f *Filter) Vectorized() int { return len(f.vecs) }

func (f *Filter) nextBatch() (*tuple.Batch, error) {
	if f.scratch == nil {
		f.scratch = make(tuple.Tuple, f.child.Schema().Len())
	}
	for {
		b, err := f.childB.NextBatch()
		if err != nil {
			return nil, err
		}
		// cur is the working selection of live physical rows; nil means
		// every physical row. It alternates between the two scratch buffers
		// as each predicate stage filters it.
		cur := b.Sel()
		for _, vp := range f.vecs {
			next := f.selBuf[:0]
			f.selBuf, f.selBuf2 = f.selBuf2, f.selBuf
			cur, err = vp(b, cur, next)
			if err != nil {
				return nil, err
			}
			f.selBuf2 = cur[:0:cap(cur)] // keep grown capacity for reuse
			if len(cur) == 0 {
				break
			}
		}
		if len(f.vecs) > 0 && len(cur) == 0 {
			continue
		}
		if f.pred != nil {
			out := f.selBuf[:0]
			f.selBuf, f.selBuf2 = f.selBuf2, f.selBuf
			if cur == nil {
				for phys := 0; phys < b.NumPhysical(); phys++ {
					ok, err := f.pred(b.PhysRowInto(f.scratch, phys))
					if err != nil {
						return nil, err
					}
					if ok {
						out = append(out, int32(phys))
					}
				}
			} else {
				for _, phys := range cur {
					ok, err := f.pred(b.PhysRowInto(f.scratch, int(phys)))
					if err != nil {
						return nil, err
					}
					if ok {
						out = append(out, phys)
					}
				}
			}
			cur = out
			f.selBuf2 = out[:0:cap(out)]
			if len(cur) == 0 {
				continue
			}
		}
		if cur != nil {
			b.SetSel(cur)
		}
		return b, nil
	}
}

func (f *Filter) Next() (tuple.Tuple, error) { return f.rows.next(f.NextBatch) }

// Projector computes one output column from an input tuple.
type Projector func(tuple.Tuple) (tuple.Value, error)

// ColProjector projects input column idx.
func ColProjector(idx int) Projector {
	return func(t tuple.Tuple) (tuple.Value, error) {
		if idx < 0 || idx >= len(t) {
			return tuple.Value{}, fmt.Errorf("exec: projection column %d out of range (arity %d)", idx, len(t))
		}
		return t[idx], nil
	}
}

// ConstProjector always yields v.
func ConstProjector(v tuple.Value) Projector {
	return func(tuple.Tuple) (tuple.Value, error) { return v, nil }
}

// Project maps input tuples through a list of projectors. Pure column
// projections (NewColumnProject / NewProjectColumns) are zero-copy on the
// batch path: the output batch shares the child's column vectors.
type Project struct {
	child   Operator
	schema  *tuple.Schema
	projs   []Projector
	colIdxs []int // non-nil => pure column projection fast path

	childB  BatchOperator
	buf     *tuple.Batch
	scratch tuple.Tuple
	rows    rowCursor

	stats OpStats
}

// NewProject builds a projection with the given output schema.
func NewProject(child Operator, schema *tuple.Schema, projs []Projector) *Project {
	return &Project{child: child, schema: schema, projs: projs, childB: asBatchOp(child)}
}

// NewColumnProject projects the input columns at idxs.
func NewColumnProject(child Operator, idxs []int) *Project {
	return NewProjectColumns(child, idxs, child.Schema().Project(idxs))
}

// NewProjectColumns projects the input columns at idxs under an explicit
// output schema (the planner renames columns this way).
func NewProjectColumns(child Operator, idxs []int, schema *tuple.Schema) *Project {
	projs := make([]Projector, len(idxs))
	for i, ix := range idxs {
		projs[i] = ColProjector(ix)
	}
	return &Project{child: child, schema: schema, projs: projs, colIdxs: idxs, childB: asBatchOp(child)}
}

func (p *Project) Schema() *tuple.Schema { return p.schema }
func (p *Project) Open() error           { p.stats.Reset(); p.rows.reset(); return p.child.Open() }
func (p *Project) Close() error          { return p.child.Close() }

func (p *Project) nextBatch() (*tuple.Batch, error) {
	b, err := p.childB.NextBatch()
	if err != nil {
		return nil, err
	}
	if p.colIdxs != nil {
		return b.Project(p.schema, p.colIdxs), nil
	}
	if p.buf == nil {
		p.buf = tuple.NewBatch(p.schema)
		p.scratch = make(tuple.Tuple, p.child.Schema().Len())
	}
	p.buf.Reset()
	n := b.Len()
	for i := 0; i < n; i++ {
		in := b.RowInto(p.scratch, i)
		for c, pr := range p.projs {
			v, err := pr(in)
			if err != nil {
				return nil, err
			}
			p.buf.Cols[c].AppendValue(v)
		}
		p.buf.BumpRow()
	}
	return p.buf, nil
}

func (p *Project) Next() (tuple.Tuple, error) { return p.rows.next(p.NextBatch) }

// Limit passes at most n tuples.
type Limit struct {
	child  Operator
	n      int64
	seen   int64
	childB BatchOperator
	rows   rowCursor

	stats OpStats
}

// NewLimit caps child at n tuples.
func NewLimit(child Operator, n int64) *Limit {
	return &Limit{child: child, n: n, childB: asBatchOp(child)}
}

func (l *Limit) Schema() *tuple.Schema { return l.child.Schema() }
func (l *Limit) Open() error           { l.stats.Reset(); l.seen = 0; l.rows.reset(); return l.child.Open() }
func (l *Limit) Close() error          { return l.child.Close() }

func (l *Limit) nextBatch() (*tuple.Batch, error) {
	if l.seen >= l.n {
		return nil, io.EOF
	}
	b, err := l.childB.NextBatch()
	if err != nil {
		return nil, err
	}
	if rem := l.n - l.seen; int64(b.Len()) > rem {
		b.Truncate(int(rem))
	}
	l.seen += int64(b.Len())
	return b, nil
}

func (l *Limit) Next() (tuple.Tuple, error) { return l.rows.next(l.NextBatch) }

// Distinct removes consecutive duplicates; the input must be sorted so that
// equal tuples are adjacent. The batch path compares adjacent rows column
// by column and emits a selection vector.
type Distinct struct {
	child  Operator
	childB BatchOperator
	prev   tuple.Tuple // last row of the previous batch
	selBuf []int32
	rows   rowCursor

	stats OpStats
}

// NewDistinct wraps a sorted child.
func NewDistinct(child Operator) *Distinct {
	return &Distinct{child: child, childB: asBatchOp(child)}
}

func (d *Distinct) Schema() *tuple.Schema { return d.child.Schema() }
func (d *Distinct) Open() error {
	d.stats.Reset()
	d.prev = nil
	d.rows.reset()
	return d.child.Open()
}
func (d *Distinct) Close() error { return d.child.Close() }

func (d *Distinct) nextBatch() (*tuple.Batch, error) {
	for {
		b, err := d.childB.NextBatch()
		if err != nil {
			return nil, err
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		sel := d.selBuf[:0]
		for i := 0; i < n; i++ {
			var dup bool
			if i == 0 {
				dup = d.prev != nil && rowEqualsTuple(b, 0, d.prev)
			} else {
				dup = rowsEqual(b, i-1, i)
			}
			if !dup {
				sel = append(sel, int32(b.RowIdx(i)))
			}
		}
		d.selBuf = sel[:0]
		d.prev = b.Row(n - 1)
		if len(sel) == 0 {
			continue
		}
		b.SetSel(sel)
		return b, nil
	}
}

func (d *Distinct) Next() (tuple.Tuple, error) { return d.rows.next(d.NextBatch) }

// rowsEqual reports whether logical rows i and j of b are equal on every
// column.
func rowsEqual(b *tuple.Batch, i, j int) bool {
	pi, pj := b.RowIdx(i), b.RowIdx(j)
	for c := range b.Cols {
		col := &b.Cols[c]
		if col.Kind == tuple.KindInt {
			if col.I[pi] != col.I[pj] {
				return false
			}
		} else if col.S[pi] != col.S[pj] {
			return false
		}
	}
	return true
}

// rowEqualsTuple reports whether logical row i of b equals t column by
// column.
func rowEqualsTuple(b *tuple.Batch, i int, t tuple.Tuple) bool {
	phys := b.RowIdx(i)
	for c := range b.Cols {
		col := &b.Cols[c]
		if col.Kind == tuple.KindInt {
			if t[c].Kind != tuple.KindInt || col.I[phys] != t[c].Int {
				return false
			}
		} else if t[c].Kind != tuple.KindString || col.S[phys] != t[c].Str {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Sort

// SortKey names one sort column and direction for the vectorized sort.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes and orders its input. Two implementations back it:
//
//   - The vectorized path (NewSortKeys with a nil pool): input batches are
//     gathered into one columnar buffer and an index permutation is sorted
//     with cache-friendly column comparisons — no per-row boxing. Equal
//     keys keep their input order (the permutation index is the final
//     tie-break), matching the stable semantics of the classic path.
//   - The classic path (NewSort, or NewSortKeys with a pool): tuples are
//     pulled row-wise; with a pool the sort is external, spilling runs to
//     heap files and counting their I/O (the 2·Σ‖R'_i‖ term of Section
//     4.3), otherwise an in-memory stable sort.
type Sort struct {
	child    Operator
	cmp      xsort.Comparator
	keys     []SortKey
	pool     *storage.Pool
	memLimit int

	parallel int // sort-worker count for the columnar path (0/1 = serial)
	sizeHint int // expected input rows, pre-sizes the columnar buffer

	// columnar path state
	store *tuple.Batch
	perm  []int32
	pos   int
	buf   *tuple.Batch

	out  Operator // classic path output
	outB BatchOperator
	rows rowCursor

	stats OpStats
}

// NewSort builds a comparator-driven sort (external when pool is non-nil).
func NewSort(child Operator, cmp xsort.Comparator, pool *storage.Pool, memLimit int) *Sort {
	return &Sort{child: child, cmp: cmp, pool: pool, memLimit: memLimit}
}

// NewSortKeys builds a key-driven sort: vectorized in memory when pool is
// nil, external (spilling runs through pool) otherwise.
func NewSortKeys(child Operator, keys []SortKey, pool *storage.Pool, memLimit int) *Sort {
	return &Sort{child: child, keys: keys, pool: pool, memLimit: memLimit}
}

func (s *Sort) Schema() *tuple.Schema { return s.child.Schema() }

// Keys returns the sort keys (nil for comparator-driven sorts).
func (s *Sort) Keys() []SortKey { return s.keys }

// External reports whether the sort spills runs through a pool.
func (s *Sort) External() bool { return s.pool != nil }

// SetParallel runs the columnar radix sort as w per-worker runs merged by
// an in-memory cascade. The merged permutation is identical to the serial
// one: the radix pairs carry the global row index as tie-break, so the
// run merge reproduces the serial total order exactly.
func (s *Sort) SetParallel(w int) { s.parallel = w }

// Parallel returns the sort-worker count (for EXPLAIN).
func (s *Sort) Parallel() int { return s.parallel }

// SetSizeHint pre-sizes the columnar gather buffer for n input rows.
func (s *Sort) SetSizeHint(n int) { s.sizeHint = n }

// comparatorFromKeys lowers sort keys to an xsort comparator for the
// external path.
func comparatorFromKeys(keys []SortKey) xsort.Comparator {
	return func(a, b tuple.Tuple) int {
		for _, k := range keys {
			c := tuple.Compare(a[k.Col], b[k.Col])
			if c != 0 {
				if k.Desc {
					return -c
				}
				return c
			}
		}
		return 0
	}
}

func (s *Sort) Open() error {
	s.stats.Reset()
	s.rows.reset()
	s.store, s.perm, s.pos = nil, nil, 0
	s.out, s.outB = nil, nil
	if err := s.child.Open(); err != nil {
		return err
	}
	defer s.child.Close()

	if s.keys != nil && s.pool == nil {
		return s.openColumnar()
	}

	cmp := s.cmp
	if cmp == nil {
		cmp = comparatorFromKeys(s.keys)
	}
	if s.pool != nil {
		f, err := xsort.Stream(s.pool, s.child.Schema(), opIter{s.child}, cmp, s.memLimit)
		if err != nil {
			return err
		}
		s.out = NewHeapScan(f)
	} else {
		var rows []tuple.Tuple
		for {
			t, err := s.child.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rows = append(rows, t)
		}
		xsort.Tuples(rows, cmp)
		s.out = NewMemScan(s.child.Schema(), rows)
	}
	s.outB = asBatchOp(s.out)
	return s.out.Open()
}

// sortPermRadix sorts perm by the ascending integer key columns of store
// using the packed byte-wise radix kernel: each column is bias-encoded
// against its minimum and the columns are packed left-to-right into one
// word (first key most significant), so unsigned order equals
// lexicographic key order. The row index rides in the pair's minor word,
// which both carries the permutation through the sort and breaks ties by
// input position — the same total order the comparison paths produce.
// Returns false (perm untouched) when the combined key domain needs more
// than 64 bits.
//
// With workers > 1 the rows are cut into contiguous chunks, each packed
// and radix-sorted on its own goroutine, and the sorted runs are merged
// in memory. The pair's minor word is the global row index, a unique
// tie-break, so the merged permutation is exactly the serial one.
func sortPermRadix(store *tuple.Batch, cols []int, perm []int32, workers int) bool {
	n := len(perm)
	if n < 2 {
		return true
	}
	type colPack struct {
		v    []int64
		min  uint64
		bits uint
	}
	packs := make([]colPack, len(cols))
	var totalBits uint
	for i, c := range cols {
		v := store.Cols[c].I[:n]
		mn, mx := v[0], v[0]
		for _, x := range v[1:] {
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		// Two's-complement subtraction yields the unsigned span for any
		// signed range, so negative keys bias-encode correctly.
		b := uint(bits.Len64(uint64(mx) - uint64(mn)))
		packs[i] = colPack{v, uint64(mn), b}
		totalBits += b
	}
	if totalBits > 64 {
		return false
	}
	pack := func(pairs []storage.PackedRow, lo, hi int) {
		for r := lo; r < hi; r++ {
			var key uint64
			for _, p := range packs {
				key = key<<p.bits | (uint64(p.v[r]) - p.min)
			}
			pairs[r-lo] = storage.PackedRow{Tid: key, Key: uint64(uint32(r))}
		}
	}
	var sorted []storage.PackedRow
	if workers > 1 && n >= 2*tuple.BatchSize {
		if workers > n/tuple.BatchSize {
			workers = n / tuple.BatchSize
		}
		runs := make([][]storage.PackedRow, workers)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo, hi := w*n/workers, (w+1)*n/workers
			go func(w, lo, hi int) {
				defer wg.Done()
				run := make([]storage.PackedRow, hi-lo)
				pack(run, lo, hi)
				tmp := make([]storage.PackedRow, hi-lo)
				xsort.RadixSortRows(run, tmp)
				runs[w] = run
			}(w, lo, hi)
		}
		wg.Wait()
		sorted = xsort.MergeRowSlices(runs, make([]storage.PackedRow, 0, n))
	} else {
		sorted = make([]storage.PackedRow, n)
		pack(sorted, 0, n)
		tmp := make([]storage.PackedRow, n)
		xsort.RadixSortRows(sorted, tmp)
	}
	for i := range sorted {
		perm[i] = int32(uint32(sorted[i].Key))
	}
	return true
}

// storeSortedAsc reports whether store is already lexicographically sorted
// ascending on the given integer key columns. One linear pass over the raw
// column slices; the common case (first key decides) touches one slice.
func storeSortedAsc(store *tuple.Batch, cols []int) bool {
	n := store.Len()
	keys := make([][]int64, len(cols))
	for i, c := range cols {
		keys[i] = store.Cols[c].I[:n]
	}
	for r := 1; r < n; r++ {
		for _, v := range keys {
			if v[r-1] < v[r] {
				break
			}
			if v[r-1] > v[r] {
				return false
			}
		}
	}
	return true
}

// openColumnar gathers the child into a columnar buffer and sorts an index
// permutation over it.
func (s *Sort) openColumnar() error {
	store := tuple.NewBatch(s.child.Schema())
	if s.sizeHint > 0 {
		store.Grow(s.sizeHint)
	}
	childB := asBatchOp(s.child)
	for {
		b, err := childB.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		store.Append(b)
	}
	n := store.Len()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	cols := make([]int, len(s.keys))
	desc := make([]bool, len(s.keys))
	for i, k := range s.keys {
		cols[i] = k.Col
		desc[i] = k.Desc
	}
	// All-integer ascending keys (every SETM sort): compare raw column
	// slices without per-row dispatch.
	intAsc := true
	for i, c := range cols {
		if desc[i] || store.Cols[c].Kind != tuple.KindInt {
			intAsc = false
			break
		}
	}
	// slices.SortFunc (not sort.Slice) avoids the reflect-based swapper:
	// the permutation swaps as concrete int32s. The index tie-break makes
	// every ordering total, so the unstable pdqsort still yields the same
	// (input-order-on-ties) permutation a stable sort would.
	switch {
	case intAsc && storeSortedAsc(store, cols):
		// Input already sorted on the keys — common when a join preserves
		// the physical order the ORDER BY asks for but the planner's
		// conservative ordering claim cannot prove it (e.g. SETM's R'_k).
		// The permutation stays the identity, which a stable sort of a
		// sorted store would produce anyway, so output is unchanged.
	case intAsc && sortPermRadix(store, cols, perm, s.parallel):
		// Sorted by the packed radix kernel: the combined key domain fit
		// one word, so the rows moved in O(n) byte passes instead of
		// n·log n indirect comparisons.
	case intAsc && len(cols) == 1:
		v := store.Cols[cols[0]].I
		slices.SortFunc(perm, func(pi, pj int32) int {
			a, b := v[pi], v[pj]
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
			return int(pi) - int(pj)
		})
	case intAsc && len(cols) == 2:
		// Two integer keys — the (trans_id, item) shape of every SETM
		// intermediate sort — compare without the key-column loop.
		k0, k1 := store.Cols[cols[0]].I, store.Cols[cols[1]].I
		slices.SortFunc(perm, func(pi, pj int32) int {
			a, b := k0[pi], k0[pj]
			if a == b {
				a, b = k1[pi], k1[pj]
			}
			if a != b {
				if a < b {
					return -1
				}
				return 1
			}
			return int(pi) - int(pj)
		})
	case intAsc:
		keyCols := make([][]int64, len(cols))
		for i, c := range cols {
			keyCols[i] = store.Cols[c].I
		}
		slices.SortFunc(perm, func(pi, pj int32) int {
			for _, kc := range keyCols {
				a, b := kc[pi], kc[pj]
				if a != b {
					if a < b {
						return -1
					}
					return 1
				}
			}
			return int(pi) - int(pj)
		})
	default:
		slices.SortFunc(perm, func(pi, pj int32) int {
			if c := store.CompareRows(int(pi), store, int(pj), cols, cols, desc); c != 0 {
				return c
			}
			return int(pi) - int(pj) // stability: preserve input order on ties
		})
	}
	s.store, s.perm, s.pos = store, perm, 0
	if s.buf == nil {
		s.buf = tuple.NewBatch(s.child.Schema())
	}
	return nil
}

type opIter struct{ op Operator }

func (o opIter) Next() (tuple.Tuple, error) { return o.op.Next() }
func (o opIter) Close()                     {}

func (s *Sort) nextBatch() (*tuple.Batch, error) {
	if s.store != nil {
		if s.pos >= len(s.perm) {
			return nil, io.EOF
		}
		s.buf.Reset()
		end := s.pos + tuple.BatchSize
		if end > len(s.perm) {
			end = len(s.perm)
		}
		for ; s.pos < end; s.pos++ {
			s.buf.AppendRow(s.store, int(s.perm[s.pos]))
		}
		return s.buf, nil
	}
	if s.outB == nil {
		return nil, io.EOF
	}
	return s.outB.NextBatch()
}

func (s *Sort) Next() (tuple.Tuple, error) {
	if s.store != nil {
		return s.rows.next(s.NextBatch)
	}
	if s.out == nil {
		return nil, io.EOF
	}
	t, err := s.out.Next()
	if err == nil {
		s.stats.AddRows(1) // classic path bypasses NextBatch; keep rows exact
	}
	return t, err
}

func (s *Sort) Close() error {
	if s.out != nil {
		return s.out.Close()
	}
	s.store, s.perm = nil, nil
	return nil
}
