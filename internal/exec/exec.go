// Package exec implements the query-execution operators of the engine in
// the Volcano (iterator) style: scans, filter, project, sort, merge-scan
// join, nested-loop join, sort-based group/count, distinct, and limit.
//
// The merge-scan join and sort operators are the two primitives the paper
// reduces Algorithm SETM to (Section 4.4); the nested-loop join exists so
// the rejected Section 3 strategy can be executed and measured rather than
// only modelled.
package exec

import (
	"fmt"
	"io"

	hp "setm/internal/heap"
	"setm/internal/storage"
	"setm/internal/tuple"
	"setm/internal/xsort"
)

// Operator is a pull-based tuple stream. The contract follows the Volcano
// model: Open prepares the stream, Next returns tuples until io.EOF, Close
// releases resources. Operators are single-use unless documented otherwise.
type Operator interface {
	// Schema describes the tuples produced.
	Schema() *tuple.Schema
	// Open prepares the operator (and its inputs) for iteration.
	Open() error
	// Next returns the next tuple or io.EOF.
	Next() (tuple.Tuple, error)
	// Close releases resources; it must be safe after a failed Open.
	Close() error
}

// Drain pulls every tuple from op (calling Open and Close) into memory.
func Drain(op Operator) ([]tuple.Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []tuple.Tuple
	for {
		t, err := op.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// Materialize streams op into a fresh heap file in pool.
func Materialize(pool *storage.Pool, op Operator) (*hp.File, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	f, err := hp.Create(pool, op.Schema())
	if err != nil {
		return nil, err
	}
	for {
		t, err := op.Next()
		if err == io.EOF {
			return f, nil
		}
		if err != nil {
			return nil, err
		}
		if err := f.Append(t); err != nil {
			return nil, err
		}
	}
}

// ---------------------------------------------------------------------------
// Scans

// HeapScan reads a heap file front to back.
type HeapScan struct {
	file *hp.File
	sc   *hp.Scanner
}

// NewHeapScan returns a scan over f.
func NewHeapScan(f *hp.File) *HeapScan { return &HeapScan{file: f} }

func (s *HeapScan) Schema() *tuple.Schema { return s.file.Schema() }

func (s *HeapScan) Open() error {
	s.sc = s.file.Scan()
	return nil
}

func (s *HeapScan) Next() (tuple.Tuple, error) {
	if s.sc == nil {
		return nil, io.EOF
	}
	return s.sc.Next()
}

func (s *HeapScan) Close() error {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	return nil
}

// MemScan streams an in-memory tuple slice.
type MemScan struct {
	schema *tuple.Schema
	rows   []tuple.Tuple
	pos    int
}

// NewMemScan returns a scan over rows.
func NewMemScan(schema *tuple.Schema, rows []tuple.Tuple) *MemScan {
	return &MemScan{schema: schema, rows: rows}
}

func (s *MemScan) Schema() *tuple.Schema { return s.schema }
func (s *MemScan) Open() error           { s.pos = 0; return nil }

func (s *MemScan) Next() (tuple.Tuple, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	t := s.rows[s.pos]
	s.pos++
	return t, nil
}

func (s *MemScan) Close() error { return nil }

// Rename passes tuples through unchanged under a different schema; the
// planner uses it to qualify base-table column names with FROM-clause
// bindings ("sales r1" exposes columns "r1.trans_id", "r1.item").
type Rename struct {
	child  Operator
	schema *tuple.Schema
}

// NewRename wraps child with the given schema (which must have the same
// arity as the child's).
func NewRename(child Operator, schema *tuple.Schema) *Rename {
	return &Rename{child: child, schema: schema}
}

func (r *Rename) Schema() *tuple.Schema      { return r.schema }
func (r *Rename) Open() error                { return r.child.Open() }
func (r *Rename) Next() (tuple.Tuple, error) { return r.child.Next() }
func (r *Rename) Close() error               { return r.child.Close() }

// ---------------------------------------------------------------------------
// Filter / Project / Limit / Distinct

// Predicate decides whether a tuple passes a filter.
type Predicate func(tuple.Tuple) (bool, error)

// Filter passes through tuples satisfying pred.
type Filter struct {
	child Operator
	pred  Predicate
}

// NewFilter wraps child with predicate pred.
func NewFilter(child Operator, pred Predicate) *Filter {
	return &Filter{child: child, pred: pred}
}

func (f *Filter) Schema() *tuple.Schema { return f.child.Schema() }
func (f *Filter) Open() error           { return f.child.Open() }
func (f *Filter) Close() error          { return f.child.Close() }

func (f *Filter) Next() (tuple.Tuple, error) {
	for {
		t, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		ok, err := f.pred(t)
		if err != nil {
			return nil, err
		}
		if ok {
			return t, nil
		}
	}
}

// Projector computes one output column from an input tuple.
type Projector func(tuple.Tuple) (tuple.Value, error)

// ColProjector projects input column idx.
func ColProjector(idx int) Projector {
	return func(t tuple.Tuple) (tuple.Value, error) {
		if idx < 0 || idx >= len(t) {
			return tuple.Value{}, fmt.Errorf("exec: projection column %d out of range (arity %d)", idx, len(t))
		}
		return t[idx], nil
	}
}

// ConstProjector always yields v.
func ConstProjector(v tuple.Value) Projector {
	return func(tuple.Tuple) (tuple.Value, error) { return v, nil }
}

// Project maps input tuples through a list of projectors.
type Project struct {
	child  Operator
	schema *tuple.Schema
	projs  []Projector
}

// NewProject builds a projection with the given output schema.
func NewProject(child Operator, schema *tuple.Schema, projs []Projector) *Project {
	return &Project{child: child, schema: schema, projs: projs}
}

// NewColumnProject projects the input columns at idxs.
func NewColumnProject(child Operator, idxs []int) *Project {
	projs := make([]Projector, len(idxs))
	for i, ix := range idxs {
		projs[i] = ColProjector(ix)
	}
	return &Project{child: child, schema: child.Schema().Project(idxs), projs: projs}
}

func (p *Project) Schema() *tuple.Schema { return p.schema }
func (p *Project) Open() error           { return p.child.Open() }
func (p *Project) Close() error          { return p.child.Close() }

func (p *Project) Next() (tuple.Tuple, error) {
	in, err := p.child.Next()
	if err != nil {
		return nil, err
	}
	out := make(tuple.Tuple, len(p.projs))
	for i, pr := range p.projs {
		v, err := pr(in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Limit passes at most n tuples.
type Limit struct {
	child Operator
	n     int64
	seen  int64
}

// NewLimit caps child at n tuples.
func NewLimit(child Operator, n int64) *Limit { return &Limit{child: child, n: n} }

func (l *Limit) Schema() *tuple.Schema { return l.child.Schema() }
func (l *Limit) Open() error           { l.seen = 0; return l.child.Open() }
func (l *Limit) Close() error          { return l.child.Close() }

func (l *Limit) Next() (tuple.Tuple, error) {
	if l.seen >= l.n {
		return nil, io.EOF
	}
	t, err := l.child.Next()
	if err != nil {
		return nil, err
	}
	l.seen++
	return t, nil
}

// Distinct removes consecutive duplicates; the input must be sorted so that
// equal tuples are adjacent.
type Distinct struct {
	child Operator
	prev  tuple.Tuple
}

// NewDistinct wraps a sorted child.
func NewDistinct(child Operator) *Distinct { return &Distinct{child: child} }

func (d *Distinct) Schema() *tuple.Schema { return d.child.Schema() }
func (d *Distinct) Open() error           { d.prev = nil; return d.child.Open() }
func (d *Distinct) Close() error          { return d.child.Close() }

func (d *Distinct) Next() (tuple.Tuple, error) {
	for {
		t, err := d.child.Next()
		if err != nil {
			return nil, err
		}
		if d.prev == nil || !tuple.EqualTuples(d.prev, t) {
			d.prev = t
			return t, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Sort

// Sort materializes and orders its input. When pool is non-nil the sort is
// external (spilling runs to heap files and counting their I/O); otherwise
// it sorts in memory.
type Sort struct {
	child    Operator
	cmp      xsort.Comparator
	pool     *storage.Pool
	memLimit int

	out Operator
}

// NewSort builds an external sort in pool (nil pool = in-memory).
func NewSort(child Operator, cmp xsort.Comparator, pool *storage.Pool, memLimit int) *Sort {
	return &Sort{child: child, cmp: cmp, pool: pool, memLimit: memLimit}
}

func (s *Sort) Schema() *tuple.Schema { return s.child.Schema() }

func (s *Sort) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	defer s.child.Close()
	if s.pool != nil {
		f, err := xsort.Stream(s.pool, s.child.Schema(), opIter{s.child}, s.cmp, s.memLimit)
		if err != nil {
			return err
		}
		s.out = NewHeapScan(f)
	} else {
		var rows []tuple.Tuple
		for {
			t, err := s.child.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rows = append(rows, t)
		}
		xsort.Tuples(rows, s.cmp)
		s.out = NewMemScan(s.child.Schema(), rows)
	}
	return s.out.Open()
}

type opIter struct{ op Operator }

func (o opIter) Next() (tuple.Tuple, error) { return o.op.Next() }
func (o opIter) Close()                     {}

func (s *Sort) Next() (tuple.Tuple, error) {
	if s.out == nil {
		return nil, io.EOF
	}
	return s.out.Next()
}

func (s *Sort) Close() error {
	if s.out != nil {
		return s.out.Close()
	}
	return nil
}
