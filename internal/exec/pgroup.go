// ParallelGroup: hash aggregation with sorted output. Where SortGroup
// needs its input pre-sorted on the group columns (and the planner pays a
// full materializing sort for it), ParallelGroup aggregates unsorted
// input into a hash table keyed by the group columns and sorts only the
// distinct groups for emission. Output is identical to sort+SortGroup —
// groups ascending on the group columns, same aggregate values — at
// O(rows + groups·log groups) instead of O(rows·log rows).
//
// With several fragment children the table build is partitioned: each
// worker aggregates its claimed fragments into a private table (morsel
// stealing, as in Gather), and a merge step combines the per-worker
// tables by sorting their slots together and folding equal keys — the
// same combine the emission sort needs anyway, so the merge is free.
package exec

import (
	"fmt"
	"io"
	"slices"
	"sync"
	"sync/atomic"

	"setm/internal/tuple"
)

// groupTable is an open-addressing hash table from an all-integer group
// key to a slot of aggregate state. Keys and states are stored columnar;
// buckets hold slot indexes.
type groupTable struct {
	nkeys int
	naggs int

	keys   [][]int64 // nkeys slices, slot-indexed
	counts []int64
	sums   [][]int64 // naggs slices
	mins   [][]int64
	maxs   [][]int64

	buckets []int32 // power of two; -1 = empty
	mask    uint64
}

func newGroupTable(nkeys, naggs int) *groupTable {
	t := &groupTable{nkeys: nkeys, naggs: naggs}
	t.keys = make([][]int64, nkeys)
	t.sums = make([][]int64, naggs)
	t.mins = make([][]int64, naggs)
	t.maxs = make([][]int64, naggs)
	t.rehash(1 << 10)
	return t
}

func (t *groupTable) slots() int { return len(t.counts) }

func (t *groupTable) rehash(n int) {
	t.buckets = make([]int32, n)
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	t.mask = uint64(n - 1)
	for s := 0; s < t.slots(); s++ {
		h := t.hashSlot(s) & t.mask
		for t.buckets[h] != -1 {
			h = (h + 1) & t.mask
		}
		t.buckets[h] = int32(s)
	}
}

func (t *groupTable) hashSlot(s int) uint64 {
	var h uint64 = 1469598103934665603
	for k := 0; k < t.nkeys; k++ {
		h ^= uint64(t.keys[k][s])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func hashKey(key []int64) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range key {
		h ^= uint64(v)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// lookup finds or creates the slot for key (scratch holds the key words).
func (t *groupTable) lookup(key []int64) int {
	h := hashKey(key) & t.mask
	for {
		s := t.buckets[h]
		if s == -1 {
			break
		}
		match := true
		for k := 0; k < t.nkeys; k++ {
			if t.keys[k][s] != key[k] {
				match = false
				break
			}
		}
		if match {
			return int(s)
		}
		h = (h + 1) & t.mask
	}
	// Insert a fresh slot.
	s := t.slots()
	for k := 0; k < t.nkeys; k++ {
		t.keys[k] = append(t.keys[k], key[k])
	}
	t.counts = append(t.counts, 0)
	for a := 0; a < t.naggs; a++ {
		t.sums[a] = append(t.sums[a], 0)
		t.mins[a] = append(t.mins[a], 0)
		t.maxs[a] = append(t.maxs[a], 0)
	}
	t.buckets[h] = int32(s)
	if uint64(t.slots())*4 > uint64(len(t.buckets))*3 {
		t.rehash(len(t.buckets) * 2)
	}
	return s
}

// ParallelGroup aggregates its children (fragments of one logical input)
// on integer group columns, emitting groups ascending on the group
// columns — the order a sort+SortGroup plan produces. Aggregates are
// COUNT/SUM/MIN/MAX over integer columns.
type ParallelGroup struct {
	fragments []Operator
	groupCols []int
	aggs      []AggSpec
	schema    *tuple.Schema
	workers   int

	perRows []int64
	merged  *groupTable
	perm    []int32
	pos     int
	out     *tuple.Batch
	rows    rowCursor

	stats OpStats
}

// NewParallelGroup groups the union of the fragments' rows on groupCols
// (all integer), computing aggs, with the table build spread over up to
// workers goroutines. The fragments' schemas must match; their
// concatenation must be the logical input relation.
func NewParallelGroup(fragments []Operator, groupCols []int, aggs []AggSpec, workers int) *ParallelGroup {
	in := fragments[0].Schema()
	cols := make([]tuple.Column, 0, len(groupCols)+len(aggs))
	for _, gc := range groupCols {
		cols = append(cols, in.Cols[gc])
	}
	for _, a := range aggs {
		name := a.Name
		if name == "" {
			name = "agg"
		}
		cols = append(cols, tuple.Column{Name: name, Kind: tuple.KindInt})
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(fragments) {
		workers = len(fragments)
	}
	return &ParallelGroup{
		fragments: fragments,
		groupCols: groupCols,
		aggs:      aggs,
		schema:    tuple.NewSchema(cols...),
		workers:   workers,
	}
}

func (g *ParallelGroup) Schema() *tuple.Schema { return g.schema }

// Workers returns the worker count (for EXPLAIN).
func (g *ParallelGroup) Workers() int { return g.workers }

// Fragments returns the fragment count (for EXPLAIN).
func (g *ParallelGroup) Fragments() int { return len(g.fragments) }

// Fragment returns fragment i's pipeline (EXPLAIN renders fragment 0).
func (g *ParallelGroup) Fragment(i int) Operator { return g.fragments[i] }

// WorkerRows reports input rows aggregated per fragment.
func (g *ParallelGroup) WorkerRows() []int64 { return g.perRows }

// buildFragment aggregates fragment f into t.
func (g *ParallelGroup) buildFragment(f int, t *groupTable, key []int64) (int64, error) {
	op := g.fragments[f]
	bop := asBatchOp(op)
	if err := bop.Open(); err != nil {
		op.Close()
		return 0, err
	}
	var rows int64
	for {
		b, err := bop.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			op.Close()
			return rows, err
		}
		for _, gc := range g.groupCols {
			if b.Cols[gc].Kind != tuple.KindInt {
				op.Close()
				return rows, fmt.Errorf("exec: parallel group over non-integer column %d", gc)
			}
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			phys := b.RowIdx(i)
			for k, gc := range g.groupCols {
				key[k] = b.Cols[gc].I[phys]
			}
			s := t.lookup(key)
			first := t.counts[s] == 0
			t.counts[s]++
			for ai, a := range g.aggs {
				switch a.Kind {
				case AggCount:
					// count handled globally
				case AggSum, AggMin, AggMax:
					col := &b.Cols[a.Col]
					if col.Kind != tuple.KindInt {
						op.Close()
						return rows, fmt.Errorf("exec: aggregate over non-integer column %d", a.Col)
					}
					v := col.I[phys]
					if first {
						t.sums[ai][s], t.mins[ai][s], t.maxs[ai][s] = v, v, v
					} else {
						t.sums[ai][s] += v
						if v < t.mins[ai][s] {
							t.mins[ai][s] = v
						}
						if v > t.maxs[ai][s] {
							t.maxs[ai][s] = v
						}
					}
				}
			}
		}
		rows += int64(n)
	}
	return rows, op.Close()
}

func (g *ParallelGroup) Open() error {
	g.stats.Reset()
	g.rows.reset()
	g.merged, g.perm, g.pos = nil, nil, 0
	n := len(g.fragments)
	g.perRows = make([]int64, n)
	tables := make([]*groupTable, g.workers)
	errs := make([]error, g.workers)
	var claim atomic.Int64
	var wg sync.WaitGroup
	wg.Add(g.workers)
	for w := 0; w < g.workers; w++ {
		go func(w int) {
			defer wg.Done()
			t := newGroupTable(len(g.groupCols), len(g.aggs))
			tables[w] = t
			key := make([]int64, len(g.groupCols))
			for {
				f := int(claim.Add(1)) - 1
				if f >= n {
					return
				}
				rows, err := g.buildFragment(f, t, key)
				g.perRows[f] = rows
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	g.merged = g.mergeTables(tables)
	// Emission order: groups ascending on the group columns, which is what
	// the equivalent sort+SortGroup plan emits. The merge step has already
	// folded duplicate keys, so a plain permutation sort finishes the job.
	t := g.merged
	g.perm = make([]int32, t.slots())
	for i := range g.perm {
		g.perm[i] = int32(i)
	}
	slices.SortFunc(g.perm, func(a, b int32) int {
		for k := 0; k < t.nkeys; k++ {
			av, bv := t.keys[k][a], t.keys[k][b]
			if av != bv {
				if av < bv {
					return -1
				}
				return 1
			}
		}
		return 0
	})
	if g.out == nil {
		g.out = tuple.NewBatch(g.schema)
	}
	return nil
}

// mergeTables folds the per-worker partial tables into one. Worker 0's
// table (the largest, as worker 0 claims first) is kept; the other
// workers' slots are folded in by table lookup.
func (g *ParallelGroup) mergeTables(tables []*groupTable) *groupTable {
	base := tables[0]
	key := make([]int64, base.nkeys)
	for _, t := range tables[1:] {
		for s := 0; s < t.slots(); s++ {
			if t.counts[s] == 0 {
				continue
			}
			for k := 0; k < t.nkeys; k++ {
				key[k] = t.keys[k][s]
			}
			d := base.lookup(key)
			first := base.counts[d] == 0
			base.counts[d] += t.counts[s]
			for a := 0; a < t.naggs; a++ {
				if first {
					base.sums[a][d] = t.sums[a][s]
					base.mins[a][d] = t.mins[a][s]
					base.maxs[a][d] = t.maxs[a][s]
				} else {
					base.sums[a][d] += t.sums[a][s]
					if t.mins[a][s] < base.mins[a][d] {
						base.mins[a][d] = t.mins[a][s]
					}
					if t.maxs[a][s] > base.maxs[a][d] {
						base.maxs[a][d] = t.maxs[a][s]
					}
				}
			}
		}
	}
	return base
}

func (g *ParallelGroup) nextBatch() (*tuple.Batch, error) {
	if g.merged == nil || g.pos >= len(g.perm) {
		return nil, io.EOF
	}
	t := g.merged
	g.out.Reset()
	end := g.pos + tuple.BatchSize
	if end > len(g.perm) {
		end = len(g.perm)
	}
	g.out.Grow(end - g.pos)
	for ; g.pos < end; g.pos++ {
		s := int(g.perm[g.pos])
		for k := 0; k < t.nkeys; k++ {
			g.out.Cols[k].I = append(g.out.Cols[k].I, t.keys[k][s])
		}
		base := t.nkeys
		for ai, a := range g.aggs {
			var v int64
			switch a.Kind {
			case AggCount:
				v = t.counts[s]
			case AggSum:
				v = t.sums[ai][s]
			case AggMin:
				v = t.mins[ai][s]
			case AggMax:
				v = t.maxs[ai][s]
			}
			g.out.Cols[base+ai].I = append(g.out.Cols[base+ai].I, v)
		}
		g.out.BumpRow()
	}
	if g.out.Len() == 0 {
		return nil, io.EOF
	}
	return g.out, nil
}

func (g *ParallelGroup) Next() (tuple.Tuple, error) { return g.rows.next(g.NextBatch) }

func (g *ParallelGroup) Close() error {
	g.merged, g.perm = nil, nil
	return nil
}
