package exec

import (
	"fmt"
	"strings"
)

// Child accessors expose operator-tree structure for plan inspection
// (EXPLAIN output, planner tests). Join operators expose both inputs via
// Left/Right.

// Child returns the wrapped input.
func (r *Rename) Child() Operator { return r.child }

// Child returns the wrapped input.
func (f *Filter) Child() Operator { return f.child }

// Child returns the wrapped input.
func (p *Project) Child() Operator { return p.child }

// Child returns the wrapped input.
func (l *Limit) Child() Operator { return l.child }

// Child returns the wrapped input.
func (d *Distinct) Child() Operator { return d.child }

// Child returns the wrapped input.
func (s *Sort) Child() Operator { return s.child }

// Child returns the wrapped input.
func (g *SortGroup) Child() Operator { return g.child }

// Left returns the outer join input.
func (m *MergeJoin) Left() Operator { return m.left }

// Right returns the inner join input.
func (m *MergeJoin) Right() Operator { return m.right }

// Left returns the outer join input.
func (n *NestedLoopJoin) Left() Operator { return n.left }

// Right returns the inner join input.
func (n *NestedLoopJoin) Right() Operator { return n.right }

// Explain renders an operator tree as an indented plan, one operator per
// line, in the style of EXPLAIN output:
//
//	Project [trans_id item1 item]
//	  MergeJoin on L[0]=R[0]
//	    Sort
//	      Rename (scan p)
//	    Sort
//	      Rename (scan q)
func Explain(op Operator) string {
	var b strings.Builder
	explainAt(&b, op, 0)
	return b.String()
}

func explainAt(b *strings.Builder, op Operator, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v := op.(type) {
	case *HeapScan:
		fmt.Fprintf(b, "%sHeapScan %s (%d rows, %d pages)\n",
			indent, v.file.Schema(), v.file.Rows(), v.file.Pages())
	case *MemScan:
		fmt.Fprintf(b, "%sMemScan %s (%d rows)\n", indent, v.schema, len(v.rows))
	case *Rename:
		fmt.Fprintf(b, "%sRename %s\n", indent, v.schema)
		explainAt(b, v.child, depth+1)
	case *Filter:
		fmt.Fprintf(b, "%sFilter\n", indent)
		explainAt(b, v.child, depth+1)
	case *Project:
		fmt.Fprintf(b, "%sProject %s\n", indent, v.schema)
		explainAt(b, v.child, depth+1)
	case *Limit:
		fmt.Fprintf(b, "%sLimit %d\n", indent, v.n)
		explainAt(b, v.child, depth+1)
	case *Distinct:
		fmt.Fprintf(b, "%sDistinct\n", indent)
		explainAt(b, v.child, depth+1)
	case *Sort:
		fmt.Fprintf(b, "%sSort\n", indent)
		explainAt(b, v.child, depth+1)
	case *SortGroup:
		fmt.Fprintf(b, "%sSortGroup by %v (%d aggregates)\n", indent, v.groupCols, len(v.aggs))
		explainAt(b, v.child, depth+1)
	case *MergeJoin:
		fmt.Fprintf(b, "%sMergeJoin on %v = %v\n", indent, v.leftKeys, v.rightKeys)
		explainAt(b, v.left, depth+1)
		explainAt(b, v.right, depth+1)
	case *NestedLoopJoin:
		fmt.Fprintf(b, "%sNestedLoopJoin\n", indent)
		explainAt(b, v.left, depth+1)
		explainAt(b, v.right, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, op)
	}
}
