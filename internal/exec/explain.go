package exec

import (
	"fmt"
	"strings"
)

// Child accessors expose operator-tree structure for plan inspection
// (EXPLAIN output, planner tests). Join operators expose both inputs via
// Left/Right.

// Child returns the wrapped input.
func (r *Rename) Child() Operator { return r.child }

// Child returns the wrapped input.
func (f *Filter) Child() Operator { return f.child }

// Child returns the wrapped input.
func (p *Project) Child() Operator { return p.child }

// Child returns the wrapped input.
func (l *Limit) Child() Operator { return l.child }

// Child returns the wrapped input.
func (d *Distinct) Child() Operator { return d.child }

// Child returns the wrapped input.
func (s *Sort) Child() Operator { return s.child }

// Child returns the wrapped input.
func (g *SortGroup) Child() Operator { return g.child }

// Left returns the outer join input.
func (m *MergeJoin) Left() Operator { return m.left }

// Right returns the inner join input.
func (m *MergeJoin) Right() Operator { return m.right }

// Left returns the outer join input.
func (n *NestedLoopJoin) Left() Operator { return n.left }

// Right returns the inner join input.
func (n *NestedLoopJoin) Right() Operator { return n.right }

// Left returns the probe-side join input.
func (h *HashJoin) Left() Operator { return h.left }

// Right returns the build-side join input.
func (h *HashJoin) Right() Operator { return h.right }

// Children returns op's direct inputs in plan order (left before right),
// for generic tree walks: EXPLAIN ANALYZE rendering and calibration
// observation collection. Leaf operators return nil.
func Children(op Operator) []Operator {
	switch v := op.(type) {
	case *Rename:
		return []Operator{v.child}
	case *Filter:
		return []Operator{v.child}
	case *Project:
		return []Operator{v.child}
	case *Limit:
		return []Operator{v.child}
	case *Distinct:
		return []Operator{v.child}
	case *Sort:
		return []Operator{v.child}
	case *SortGroup:
		return []Operator{v.child}
	case *HashGroup:
		return []Operator{v.child}
	case *MergeJoin:
		return []Operator{v.left, v.right}
	case *HashJoin:
		return []Operator{v.left, v.right}
	case *NestedLoopJoin:
		return []Operator{v.left, v.right}
	case *Window:
		return []Operator{v.child}
	case *Gather:
		// Fragment 0 stands in for the pipeline shape; the fragments are
		// clones over different page ranges.
		return []Operator{v.fragments[0]}
	case *Repartition:
		return []Operator{v.fragments[0]}
	case *ParallelGroup:
		return []Operator{v.fragments[0]}
	default:
		return nil
	}
}

// Explain renders an operator tree as an indented plan, one operator per
// line, in the style of EXPLAIN output:
//
//	Project [trans_id item1 item]
//	  MergeJoin on L[0]=R[0]
//	    Sort
//	      Rename (scan p)
//	    Sort
//	      Rename (scan q)
func Explain(op Operator) string { return ExplainAnnotated(op, nil) }

// ExplainAnnotated renders the plan with a per-operator annotation
// callback; non-empty notes are appended to the operator's line. The
// cost-based planner supplies estimated costs and decision rationales this
// way.
func ExplainAnnotated(op Operator, note func(Operator) string) string {
	var b strings.Builder
	explainAt(&b, op, 0, note)
	return b.String()
}

func explainAt(b *strings.Builder, op Operator, depth int, note func(Operator) string) {
	indent := strings.Repeat("  ", depth)
	line := func(format string, args ...interface{}) {
		fmt.Fprintf(b, "%s"+format, append([]interface{}{indent}, args...)...)
		if note != nil {
			if s := note(op); s != "" {
				fmt.Fprintf(b, "  -- %s", s)
			}
		}
		b.WriteByte('\n')
	}
	switch v := op.(type) {
	case *HeapScan:
		if v.end > 0 {
			line("HeapScan %s (pages [%d,%d) of %d)", v.file.Schema(), v.start, v.end, v.file.Pages())
		} else {
			line("HeapScan %s (%d rows, %d pages)", v.file.Schema(), v.file.Rows(), v.file.Pages())
		}
	case *MemScan:
		line("MemScan %s (%d rows)", v.schema, len(v.rows))
	case *Rename:
		line("Rename %s", v.schema)
		explainAt(b, v.child, depth+1, note)
	case *Filter:
		if n := len(v.vecs); n > 0 {
			line("Filter (%d vectorized)", n)
		} else {
			line("Filter")
		}
		explainAt(b, v.child, depth+1, note)
	case *Project:
		line("Project %s", v.schema)
		explainAt(b, v.child, depth+1, note)
	case *Limit:
		line("Limit %d", v.n)
		explainAt(b, v.child, depth+1, note)
	case *Distinct:
		line("Distinct")
		explainAt(b, v.child, depth+1, note)
	case *Sort:
		switch {
		case v.keys != nil && v.pool == nil && v.parallel > 1:
			line("Sort keys=%v (vectorized in-memory, %d sort workers)", v.keys, v.parallel)
		case v.keys != nil && v.pool == nil:
			line("Sort keys=%v (vectorized in-memory)", v.keys)
		case v.keys != nil:
			line("Sort keys=%v (external)", v.keys)
		case v.pool != nil:
			line("Sort (external)")
		default:
			line("Sort")
		}
		explainAt(b, v.child, depth+1, note)
	case *SortGroup:
		line("SortGroup by %v (%d aggregates)", v.groupCols, len(v.aggs))
		explainAt(b, v.child, depth+1, note)
	case *HashGroup:
		line("HashGroup by %v (%d aggregates)", v.groupCols, len(v.aggs))
		explainAt(b, v.child, depth+1, note)
	case *MergeJoin:
		if v.hasVecGT {
			line("MergeJoin on %v = %v (residual R[%d] > L[%d] pushed down)", v.leftKeys, v.rightKeys, v.gtRight, v.gtLeft)
		} else {
			line("MergeJoin on %v = %v", v.leftKeys, v.rightKeys)
		}
		explainAt(b, v.left, depth+1, note)
		explainAt(b, v.right, depth+1, note)
	case *HashJoin:
		if v.buildWorkers > 1 {
			line("HashJoin on %v = %v (build right, %d partitions)", v.leftKeys, v.rightKeys, v.buildWorkers)
		} else {
			line("HashJoin on %v = %v (build right)", v.leftKeys, v.rightKeys)
		}
		explainAt(b, v.left, depth+1, note)
		explainAt(b, v.right, depth+1, note)
	case *NestedLoopJoin:
		line("NestedLoopJoin")
		explainAt(b, v.left, depth+1, note)
		explainAt(b, v.right, depth+1, note)
	case *Window:
		lo, hasLo, hi, hasHi := v.Bounds()
		switch {
		case hasLo && hasHi:
			line("Window col %d in [%d,%d)", v.col, lo, hi)
		case hasLo:
			line("Window col %d ≥ %d", v.col, lo)
		case hasHi:
			line("Window col %d < %d", v.col, hi)
		default:
			line("Window col %d (unbounded)", v.col)
		}
		explainAt(b, v.child, depth+1, note)
	case *Gather:
		line("Gather (dop=%d, %d fragments)", v.workers, len(v.fragments))
		explainAt(b, v.fragments[0], depth+1, note)
	case *Repartition:
		line("Repartition on %v (dop=%d, %d partitions, %d fragments)", v.keyCols, v.workers, v.parts, len(v.fragments))
		explainAt(b, v.fragments[0], depth+1, note)
	case *ParallelGroup:
		line("ParallelGroup by %v (%d aggregates, dop=%d, %d fragments)", v.groupCols, len(v.aggs), v.workers, len(v.fragments))
		explainAt(b, v.fragments[0], depth+1, note)
	default:
		line("%T", op)
	}
}
