package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats tallies logical page I/O through a buffer pool. "Random" versus
// "sequential" follows the paper's distinction: a read is sequential when it
// targets the page immediately following the previous physical read, and
// random otherwise. Hits in the buffer pool cost nothing and are counted
// separately.
type Stats struct {
	Reads           int64 // physical page reads (misses)
	SeqReads        int64 // subset of Reads that were sequential
	RandReads       int64 // subset of Reads that were random
	Writes          int64 // physical page writes
	Hits            int64 // reads satisfied by the pool
	Allocs          int64 // pages allocated
	lastReadPage    PageID
	haveLastRead    bool
	lastWrittenPage PageID
	haveLastWrite   bool
	SeqWrites       int64
	RandWrites      int64
}

// Accesses returns total physical page accesses (reads + writes), the
// quantity bounded by the formula in Section 4.3.
func (s *Stats) Accesses() int64 { return s.Reads + s.Writes }

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// String renders the counters compactly.
func (s *Stats) String() string {
	return fmt.Sprintf("reads=%d (seq=%d rand=%d) writes=%d (seq=%d rand=%d) hits=%d allocs=%d",
		s.Reads, s.SeqReads, s.RandReads, s.Writes, s.SeqWrites, s.RandWrites, s.Hits, s.Allocs)
}

func (s *Stats) noteRead(id PageID) {
	s.Reads++
	if s.haveLastRead && id == s.lastReadPage+1 {
		s.SeqReads++
	} else {
		s.RandReads++
	}
	s.lastReadPage = id
	s.haveLastRead = true
}

func (s *Stats) noteWrite(id PageID) {
	s.Writes++
	if s.haveLastWrite && id == s.lastWrittenPage+1 {
		s.SeqWrites++
	} else {
		s.RandWrites++
	}
	s.lastWrittenPage = id
	s.haveLastWrite = true
}

// Pool is a fixed-capacity LRU buffer pool over a Store. A single mutex
// serializes frame and pin accounting, so concurrent readers and writers
// — the mining executor's parallel spilled regime runs several RunWriters
// and RunReaders at once — share one pool safely. Page *contents* are not
// guarded here: a fetched page may be mutated only by the caller that
// holds its pin, which is the run/heap writers' existing single-owner
// discipline. The engine still executes queries single-threaded, as the
// paper's system did; it simply pays one uncontended lock per page op.
type Pool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	frames   map[PageID]*list.Element // -> *Page wrapped in lru entries
	lru      *list.List               // front = most recently used
	Stats    Stats

	// freeList holds page IDs returned by FreePages for reuse; freed marks
	// membership so double-frees are harmless. Reusing freed pages keeps the
	// store's footprint bounded even though Store itself is append-only.
	// Recycling is FIFO (freeHead indexes the next ID to hand out): pages
	// freed in ascending order — a spilled run, a dropped heap file — come
	// back in ascending order, so rewritten runs stay sequential on disk
	// and the paper's sequential-access economics survive page reuse.
	freeList []PageID
	freeHead int
	freed    map[PageID]bool

	// pageFree recycles evicted Page frames (the 4 KB structs, not the
	// page IDs), so a pool cycling pages through a large store does not
	// allocate — and zero — a fresh frame per miss. Capped at capacity.
	pageFree []*Page
}

type lruEntry struct {
	page *Page
}

// NewPool creates a buffer pool with the given frame capacity (minimum 1).
func NewPool(store Store, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return p.capacity }

// PinnedFrames returns the number of cached frames with a non-zero pin
// count. Tests use it to prove that error paths release every pin: a
// correct run leaves zero pinned frames behind.
func (p *Pool) PinnedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for el := p.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*lruEntry).page.pin > 0 {
			n++
		}
	}
	return n
}

// Store returns the underlying page store.
func (p *Pool) Store() Store { return p.store }

// Fetch returns the page with the given ID, pinning it. The caller must
// Unpin when done. A fetch that misses the pool performs (and counts) a
// physical read.
func (p *Pool) Fetch(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.frames[id]; ok {
		p.lru.MoveToFront(el)
		pg := el.Value.(*lruEntry).page
		pg.pin++
		p.Stats.Hits++
		return pg, nil
	}
	pg := p.takeFrame(id, false) // ReadPage overwrites the full frame
	if err := p.store.ReadPage(id, &pg.Data); err != nil {
		p.recycleFrame(pg)
		return nil, err
	}
	p.Stats.noteRead(id)
	if err := p.insert(pg); err != nil {
		return nil, err
	}
	pg.pin++
	return pg, nil
}

// Allocate reserves a fresh zeroed page, placing it in the pool pinned.
// Pages previously returned via FreePages are recycled before the store
// is asked to grow.
func (p *Pool) Allocate() (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var id PageID
	if p.freeHead < len(p.freeList) {
		id = p.freeList[p.freeHead]
		p.freeHead++
		delete(p.freed, id)
		// Compact once the consumed prefix dominates, so a list that
		// never fully drains cannot grow without bound; copying the live
		// tail to the front preserves FIFO order.
		if p.freeHead == len(p.freeList) {
			p.freeList = p.freeList[:0]
			p.freeHead = 0
		} else if p.freeHead > len(p.freeList)/2 {
			n := copy(p.freeList, p.freeList[p.freeHead:])
			p.freeList = p.freeList[:n]
			p.freeHead = 0
		}
	} else {
		var err error
		id, err = p.store.Allocate()
		if err != nil {
			return nil, err
		}
	}
	p.Stats.Allocs++
	pg := p.takeFrame(id, true) // a fresh page is zeroed by contract
	pg.MarkDirty()              // a new page must reach the store even if untouched
	if err := p.insert(pg); err != nil {
		return nil, err
	}
	pg.pin++
	return pg, nil
}

// FreePages returns pages to the pool for reuse by later Allocate calls,
// discarding any cached (even dirty) frames — the contents are dead by
// definition. Pinned pages and pages already freed are skipped.
func (p *Pool) FreePages(ids []PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed == nil {
		p.freed = make(map[PageID]bool)
	}
	for _, id := range ids {
		if p.freed[id] {
			continue
		}
		if el, ok := p.frames[id]; ok {
			pg := el.Value.(*lruEntry).page
			if pg.pin > 0 {
				continue // still in use somewhere; leak rather than corrupt
			}
			p.lru.Remove(el)
			delete(p.frames, id)
		}
		p.freed[id] = true
		p.freeList = append(p.freeList, id)
	}
}

// takeFrame returns a recycled Page frame (or a fresh one), reset for
// the given ID; zero clears the data for contracts that need it.
func (p *Pool) takeFrame(id PageID, zero bool) *Page {
	if n := len(p.pageFree); n > 0 {
		pg := p.pageFree[n-1]
		p.pageFree = p.pageFree[:n-1]
		pg.ID = id
		pg.pin = 0
		pg.dirty = false
		if zero {
			clear(pg.Data[:])
		}
		return pg
	}
	return &Page{ID: id}
}

// recycleFrame keeps an evicted frame for reuse, up to capacity.
func (p *Pool) recycleFrame(pg *Page) {
	if len(p.pageFree) < p.capacity {
		p.pageFree = append(p.pageFree, pg)
	}
}

func (p *Pool) insert(pg *Page) error {
	if err := p.evictIfFull(); err != nil {
		return err
	}
	el := p.lru.PushFront(&lruEntry{page: pg})
	p.frames[pg.ID] = el
	return nil
}

func (p *Pool) evictIfFull() error {
	for p.lru.Len() >= p.capacity {
		// Evict the least recently used unpinned page.
		var victim *list.Element
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			if el.Value.(*lruEntry).page.pin == 0 {
				victim = el
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", p.capacity)
		}
		pg := victim.Value.(*lruEntry).page
		if pg.dirty {
			if err := p.store.WritePage(pg.ID, &pg.Data); err != nil {
				return err
			}
			p.Stats.noteWrite(pg.ID)
			pg.dirty = false
		}
		p.lru.Remove(victim)
		delete(p.frames, pg.ID)
		p.recycleFrame(pg)
	}
	return nil
}

// Unpin releases one pin on the page. Pages must be unpinned exactly once
// per Fetch/Allocate.
func (p *Pool) Unpin(pg *Page) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pg.pin > 0 {
		pg.pin--
	}
}

// Flush writes all dirty pages back to the store, leaving them cached.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pool) flushLocked() error {
	for el := p.lru.Front(); el != nil; el = el.Next() {
		pg := el.Value.(*lruEntry).page
		if pg.dirty {
			if err := p.store.WritePage(pg.ID, &pg.Data); err != nil {
				return err
			}
			p.Stats.noteWrite(pg.ID)
			pg.dirty = false
		}
	}
	return nil
}

// Reset drops every cached frame (flushing dirty ones) and zeroes nothing
// else; Stats are preserved so callers can measure across phases.
func (p *Pool) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.frames = make(map[PageID]*list.Element, p.capacity)
	p.lru.Init()
	return nil
}
