package storage

import (
	"fmt"
	"os"
	"sync"
)

// FileStore is a Store backed by a single file on disk, pages laid out
// contiguously by ID. It gives the engine durable storage; the reproduction
// defaults to MemStore (the paper's experiments are about counting I/O,
// not performing it) but FileStore lets the same code run against a real
// file, and its tests double as a check that the page layer makes no
// in-memory-only assumptions.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	pages int
}

// OpenFileStore creates or opens a page file. An existing file must be a
// whole number of pages long.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	return &FileStore{f: f, pages: int(st.Size() / PageSize)}, nil
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, dst *[PageSize]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.pages {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, s.pages)
	}
	_, err := s.f.ReadAt(dst[:], int64(id)*PageSize)
	return err
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, src *[PageSize]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= s.pages {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, s.pages)
	}
	_, err := s.f.WriteAt(src[:], int64(id)*PageSize)
	return err
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(s.pages)
	var zero [PageSize]byte
	if _, err := s.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, err
	}
	s.pages++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error { return s.f.Sync() }
