package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var buf [PageSize]byte
	buf[0], buf[PageSize-1] = 0xAA, 0x55
	if err := s.WritePage(id, &buf); err != nil {
		t.Fatal(err)
	}
	var out [PageSize]byte
	if err := s.ReadPage(id, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAA || out[PageSize-1] != 0x55 {
		t.Error("page data corrupted")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		var buf [PageSize]byte
		buf[0] = byte(i + 1)
		if err := s.WritePage(id, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumPages() != 3 {
		t.Fatalf("NumPages after reopen = %d", s2.NumPages())
	}
	var out [PageSize]byte
	if err := s2.ReadPage(1, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("page 1 marker = %d, want 2", out[0])
	}
}

func TestFileStoreRejectsTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	if err := os.WriteFile(path, make([]byte, PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("torn file accepted")
	}
}

func TestFileStoreBoundsChecks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf [PageSize]byte
	if err := s.ReadPage(0, &buf); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := s.WritePage(9, &buf); err == nil {
		t.Error("write of unallocated page succeeded")
	}
}

func TestFileStoreWorksUnderPool(t *testing.T) {
	// The full pool + heap pattern against a real file.
	path := filepath.Join(t.TempDir(), "pool.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := NewPool(s, 2)
	var ids []PageID
	for i := 0; i < 10; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data[3] = byte(i)
		pg.MarkDirty()
		ids = append(ids, pg.ID)
		p.Unpin(pg)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data[3] != byte(i) {
			t.Errorf("page %d marker = %d", id, pg.Data[3])
		}
		p.Unpin(pg)
	}
}

func TestFaultStoreInjection(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if _, err := fs.Allocate(); err != nil {
		t.Fatal(err)
	}
	var buf [PageSize]byte
	if err := fs.WritePage(0, &buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadPage(0, &buf); err != nil {
		t.Fatal(err)
	}

	fs.FailReadAfter = 1 // one read already happened
	if err := fs.ReadPage(0, &buf); !errors.Is(err, ErrInjected) {
		t.Errorf("read fault = %v", err)
	}
	fs.FailWriteAfter = 1
	if err := fs.WritePage(0, &buf); !errors.Is(err, ErrInjected) {
		t.Errorf("write fault = %v", err)
	}
	fs.FailAllocAfter = 1
	if _, err := fs.Allocate(); !errors.Is(err, ErrInjected) {
		t.Errorf("alloc fault = %v", err)
	}
	if fs.NumPages() != 1 {
		t.Errorf("NumPages = %d", fs.NumPages())
	}
}

func TestPoolPropagatesReadFaults(t *testing.T) {
	inner := NewMemStore()
	warm := NewPool(inner, 4)
	pg, err := warm.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	warm.Unpin(pg)
	if err := warm.Flush(); err != nil {
		t.Fatal(err)
	}

	fs := NewFaultStore(inner)
	fs.FailReadAfter = 0
	p := NewPool(fs, 4)
	if _, err := p.Fetch(0); !errors.Is(err, ErrInjected) {
		t.Errorf("pool fetch fault = %v", err)
	}
}

func TestPoolPropagatesEvictionWriteFaults(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailWriteAfter = 0
	p := NewPool(fs, 1)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg.MarkDirty()
	p.Unpin(pg)
	// Allocating a second page must evict (and fail to write) the first.
	if _, err := p.Allocate(); !errors.Is(err, ErrInjected) {
		t.Errorf("eviction write fault = %v", err)
	}
}
