package storage

import (
	"testing"
)

func TestMemStoreAllocateReadWrite(t *testing.T) {
	m := NewMemStore()
	id, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("first page ID = %d, want 0", id)
	}
	var buf [PageSize]byte
	buf[0] = 0xAB
	if err := m.WritePage(id, &buf); err != nil {
		t.Fatal(err)
	}
	var out [PageSize]byte
	if err := m.ReadPage(id, &out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAB {
		t.Errorf("read back %x, want AB", out[0])
	}
	if m.NumPages() != 1 {
		t.Errorf("NumPages = %d, want 1", m.NumPages())
	}
}

func TestMemStoreRejectsUnallocated(t *testing.T) {
	m := NewMemStore()
	var buf [PageSize]byte
	if err := m.ReadPage(3, &buf); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := m.WritePage(3, &buf); err == nil {
		t.Error("write of unallocated page succeeded")
	}
}

func TestPoolFetchCountsHitAndMiss(t *testing.T) {
	m := NewMemStore()
	p := NewPool(m, 4)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	p.Unpin(pg)

	pg, err = p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(pg)
	if p.Stats.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (page still cached)", p.Stats.Hits)
	}
	if p.Stats.Reads != 0 {
		t.Errorf("Reads = %d, want 0", p.Stats.Reads)
	}
}

func TestPoolEvictionWritesDirtyAndRereads(t *testing.T) {
	m := NewMemStore()
	p := NewPool(m, 2)
	// Allocate 3 pages, writing a marker in each; pool holds 2.
	var ids []PageID
	for i := 0; i < 3; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data[0] = byte(i + 1)
		pg.MarkDirty()
		ids = append(ids, pg.ID)
		p.Unpin(pg)
	}
	if p.Stats.Writes == 0 {
		t.Error("no evictions happened with pool smaller than working set")
	}
	// Page 0 must have been evicted; fetching it is a physical read and the
	// marker must have survived.
	pg, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if pg.Data[0] != 1 {
		t.Errorf("evicted page lost data: %d", pg.Data[0])
	}
	p.Unpin(pg)
	if p.Stats.Reads == 0 {
		t.Error("re-fetch of evicted page did not count as physical read")
	}
}

func TestPoolAllPinnedFails(t *testing.T) {
	m := NewMemStore()
	p := NewPool(m, 1)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	_ = pg // keep pinned
	if _, err := p.Allocate(); err == nil {
		t.Error("allocation succeeded with all frames pinned")
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	m := NewMemStore()
	warm := NewPool(m, 1)
	const n = 10
	for i := 0; i < n; i++ {
		pg, err := warm.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		warm.Unpin(pg)
	}
	if err := warm.Flush(); err != nil {
		t.Fatal(err)
	}

	// Sequential scan through a tiny pool: every read is a miss, and all but
	// the first are sequential.
	p := NewPool(m, 1)
	for i := 0; i < n; i++ {
		pg, err := p.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(pg)
	}
	if p.Stats.Reads != n {
		t.Fatalf("Reads = %d, want %d", p.Stats.Reads, n)
	}
	if p.Stats.SeqReads != n-1 {
		t.Errorf("SeqReads = %d, want %d", p.Stats.SeqReads, n-1)
	}
	if p.Stats.RandReads != 1 {
		t.Errorf("RandReads = %d, want 1", p.Stats.RandReads)
	}

	// Strided access pattern: all random.
	q := NewPool(m, 1)
	for _, id := range []PageID{0, 5, 2, 9, 4} {
		pg, err := q.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		q.Unpin(pg)
	}
	if q.Stats.RandReads != 5 {
		t.Errorf("RandReads = %d, want 5", q.Stats.RandReads)
	}
}

func TestPoolFlushAndReset(t *testing.T) {
	m := NewMemStore()
	p := NewPool(m, 8)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg.Data[7] = 0x7F
	pg.MarkDirty()
	id := pg.ID
	p.Unpin(pg)
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	var buf [PageSize]byte
	if err := m.ReadPage(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf[7] != 0x7F {
		t.Error("Reset did not flush dirty page")
	}
	// After reset, fetch is a physical read again.
	before := p.Stats.Reads
	pg, err = p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(pg)
	if p.Stats.Reads != before+1 {
		t.Error("Reset did not drop cached frames")
	}
}

func TestPageIntAccessors(t *testing.T) {
	var pg Page
	pg.PutU16(0, 0xBEEF)
	pg.PutU32(2, 0xDEADBEEF)
	pg.PutU64(6, 0x0123456789ABCDEF)
	if pg.U16(0) != 0xBEEF || pg.U32(2) != 0xDEADBEEF || pg.U64(6) != 0x0123456789ABCDEF {
		t.Error("integer accessors did not round-trip")
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.noteRead(0)
	s.noteRead(1)
	s.noteWrite(5)
	if s.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", s.Accesses())
	}
	if s.String() == "" {
		t.Error("empty Stats.String()")
	}
	s.Reset()
	if s.Reads != 0 || s.Writes != 0 {
		t.Error("Reset did not zero counters")
	}
}
