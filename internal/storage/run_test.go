package storage

import (
	"errors"
	"io"
	"testing"
)

func TestRunRoundTrip(t *testing.T) {
	pool := NewPool(NewMemStore(), 4)
	for _, n := range []int{0, 1, 255, 256, 257, 1000, WordsPerPage, WordsPerPage + 1, 3 * WordsPerPage} {
		w := NewRunWriter(pool)
		for i := 0; i < n; i++ {
			if err := w.Word(uint64(i) * 7); err != nil {
				t.Fatalf("n=%d: write: %v", n, err)
			}
		}
		run, err := w.Close()
		if err != nil {
			t.Fatalf("n=%d: close: %v", n, err)
		}
		if run.Words() != int64(n) {
			t.Fatalf("n=%d: Words() = %d", n, run.Words())
		}
		wantPages := (n + WordsPerPage - 1) / WordsPerPage
		if run.Pages() != wantPages {
			t.Fatalf("n=%d: Pages() = %d, want %d", n, run.Pages(), wantPages)
		}
		rd := NewRunReader(pool, run)
		for i := 0; i < n; i++ {
			v, err := rd.Word()
			if err != nil {
				t.Fatalf("n=%d: read %d: %v", n, i, err)
			}
			if v != uint64(i)*7 {
				t.Fatalf("n=%d: word %d = %d, want %d", n, i, v, uint64(i)*7)
			}
		}
		if _, err := rd.Word(); err != io.EOF {
			t.Fatalf("n=%d: expected io.EOF, got %v", n, err)
		}
		rd.Close()
		if p := pool.PinnedFrames(); p != 0 {
			t.Fatalf("n=%d: %d pinned frames after round trip", n, p)
		}
		run.Free(pool)
	}
}

func TestRunRowRoundTrip(t *testing.T) {
	pool := NewPool(NewMemStore(), 4)
	rows := make([]PackedRow, 700)
	for i := range rows {
		rows[i] = PackedRow{Tid: uint64(i / 3), Key: uint64(i * 13)}
	}
	w := NewRunWriter(pool)
	if err := w.Rows(rows); err != nil {
		t.Fatal(err)
	}
	run, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if run.Rows() != int64(len(rows)) {
		t.Fatalf("Rows() = %d, want %d", run.Rows(), len(rows))
	}
	rd := NewRunReader(pool, run)
	defer rd.Close()
	for i, want := range rows {
		got, err := rd.Row()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("row %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := rd.Row(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestRunOddWordCountIsCorrupt(t *testing.T) {
	pool := NewPool(NewMemStore(), 2)
	w := NewRunWriter(pool)
	for i := 0; i < 3; i++ {
		if err := w.Word(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRunReader(pool, run)
	defer rd.Close()
	if _, err := rd.Row(); err != nil {
		t.Fatalf("first full row should read: %v", err)
	}
	if _, err := rd.Row(); err == nil || err == io.EOF {
		t.Fatalf("odd tail should be an explicit error, got %v", err)
	}
}

func TestRunWriterFaultFreesPartialRun(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailAllocAfter = 2
	pool := NewPool(fs, 4)
	w := NewRunWriter(pool)
	var werr error
	for i := 0; i < 4*WordsPerPage; i++ {
		if werr = w.Word(uint64(i)); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("writer survived allocation faults")
	}
	if _, err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close error %v does not wrap the injected fault", err)
	}
	if p := pool.PinnedFrames(); p != 0 {
		t.Fatalf("%d pinned frames after failed write", p)
	}
	// The two successfully allocated pages must be back on the free list:
	// the next writer reuses them without growing the store.
	before := fs.NumPages()
	fs.FailAllocAfter = -1
	w2 := NewRunWriter(pool)
	for i := 0; i < 2*WordsPerPage; i++ {
		if err := w2.Word(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.NumPages() != before {
		t.Errorf("store grew from %d to %d pages: partial run not recycled", before, fs.NumPages())
	}
}

func TestRunReaderFaultIsStickyAndUnpinned(t *testing.T) {
	store := NewMemStore()
	pool := NewPool(store, 2)
	w := NewRunWriter(pool)
	for i := 0; i < 3*WordsPerPage; i++ {
		if err := w.Word(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Reset(); err != nil { // force physical reads below
		t.Fatal(err)
	}
	fs := NewFaultStore(store)
	fs.FailReadAfter = 1
	pool2 := NewPool(fs, 2)
	rd := NewRunReader(pool2, run)
	defer rd.Close()
	sawErr := false
	for i := 0; i < 3*WordsPerPage; i++ {
		if _, err := rd.Word(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("error %v does not wrap the injected fault", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("reader never surfaced the injected read fault")
	}
	if _, err := rd.Word(); !errors.Is(err, ErrInjected) {
		t.Fatal("reader error not sticky")
	}
	if p := pool2.PinnedFrames(); p != 0 {
		t.Fatalf("%d pinned frames after read fault", p)
	}
}
