// Package storage provides the paged storage substrate of the engine: fixed
// 4 KB pages, page stores (in-memory or file-backed), and a buffer pool that
// accounts for page I/O, distinguishing random from sequential accesses.
//
// The accounting exists because the paper's analysis (Sections 3.2 and 4.3)
// argues in page fetches — random fetches at 20 ms for the nested-loop
// strategy, sequential accesses at 10 ms for SETM. Running both strategies
// on this substrate lets the experiments report the same quantities the
// paper reasons about.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed page size in bytes, matching the paper's 4 Kbyte
// assumption.
const PageSize = 4096

// PageID identifies a page within a store. IDs are dense, starting at 0.
type PageID uint32

// InvalidPage is a sentinel page ID used for "no page" links.
const InvalidPage PageID = ^PageID(0)

// Page is one fixed-size block. The layout of Data is owned by the layer
// above (heap file or B+-tree node).
type Page struct {
	ID   PageID
	Data [PageSize]byte

	dirty bool
	pin   int
}

// MarkDirty records that the page has been modified and must be written
// back when evicted.
func (p *Page) MarkDirty() { p.dirty = true }

// Dirty reports whether the page has unwritten modifications.
func (p *Page) Dirty() bool { return p.dirty }

// PutU16 writes a 16-bit little-endian value at off.
func (p *Page) PutU16(off int, v uint16) { binary.LittleEndian.PutUint16(p.Data[off:], v) }

// U16 reads a 16-bit little-endian value at off.
func (p *Page) U16(off int) uint16 { return binary.LittleEndian.Uint16(p.Data[off:]) }

// PutU32 writes a 32-bit little-endian value at off.
func (p *Page) PutU32(off int, v uint32) { binary.LittleEndian.PutUint32(p.Data[off:], v) }

// U32 reads a 32-bit little-endian value at off.
func (p *Page) U32(off int) uint32 { return binary.LittleEndian.Uint32(p.Data[off:]) }

// PutU64 writes a 64-bit little-endian value at off.
func (p *Page) PutU64(off int, v uint64) { binary.LittleEndian.PutUint64(p.Data[off:], v) }

// U64 reads a 64-bit little-endian value at off.
func (p *Page) U64(off int) uint64 { return binary.LittleEndian.Uint64(p.Data[off:]) }

// Store is the raw page I/O interface beneath the buffer pool.
type Store interface {
	// ReadPage copies page id into dst.
	ReadPage(id PageID, dst *[PageSize]byte) error
	// WritePage persists src as page id.
	WritePage(id PageID, src *[PageSize]byte) error
	// Allocate reserves a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
}

// memChunkPages is a MemStore's allocation granularity: pages live in
// fixed 4 MB chunks so allocating never moves existing pages. A flat
// []page slice would memmove the entire store on every capacity doubling,
// which profiles as a double-digit share of write-heavy workloads.
const memChunkPages = 1024

// MemStore is an in-memory Store. It is the default substrate: the
// reproduction cares about *counting* I/O, not performing it, so pages live
// in RAM while the buffer pool still tallies every logical page access.
type MemStore struct {
	chunks []*[memChunkPages][PageSize]byte
	n      int
}

// NewMemStore returns an empty in-memory page store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements Store.
func (m *MemStore) ReadPage(id PageID, dst *[PageSize]byte) error {
	if int(id) >= m.n {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, m.n)
	}
	*dst = m.chunks[id/memChunkPages][id%memChunkPages]
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(id PageID, src *[PageSize]byte) error {
	if int(id) >= m.n {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, m.n)
	}
	m.chunks[id/memChunkPages][id%memChunkPages] = *src
	return nil
}

// Allocate implements Store.
func (m *MemStore) Allocate() (PageID, error) {
	if m.n%memChunkPages == 0 {
		m.chunks = append(m.chunks, new([memChunkPages][PageSize]byte))
	}
	m.n++
	return PageID(m.n - 1), nil
}

// NumPages implements Store.
func (m *MemStore) NumPages() int { return m.n }
