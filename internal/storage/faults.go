package storage

import (
	"fmt"
)

// FaultStore wraps a Store and fails operations on schedule; tests use it
// to verify that I/O errors propagate cleanly through the pool, heap
// files, sorts, joins, and miners instead of corrupting state or
// panicking.
type FaultStore struct {
	Inner Store

	// FailReadAfter fails every ReadPage once this many reads have
	// succeeded (negative = never).
	FailReadAfter int
	// FailWriteAfter fails every WritePage once this many writes have
	// succeeded (negative = never).
	FailWriteAfter int
	// FailAllocAfter fails every Allocate once this many allocations have
	// succeeded (negative = never).
	FailAllocAfter int

	reads, writes, allocs int
}

// NewFaultStore wraps inner with all fault triggers disabled.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{Inner: inner, FailReadAfter: -1, FailWriteAfter: -1, FailAllocAfter: -1}
}

// ErrInjected is the sentinel failure; errors.Is-compatible via wrapping.
var ErrInjected = fmt.Errorf("storage: injected fault")

// ReadPage implements Store.
func (s *FaultStore) ReadPage(id PageID, dst *[PageSize]byte) error {
	if s.FailReadAfter >= 0 && s.reads >= s.FailReadAfter {
		return fmt.Errorf("read page %d: %w", id, ErrInjected)
	}
	s.reads++
	return s.Inner.ReadPage(id, dst)
}

// WritePage implements Store.
func (s *FaultStore) WritePage(id PageID, src *[PageSize]byte) error {
	if s.FailWriteAfter >= 0 && s.writes >= s.FailWriteAfter {
		return fmt.Errorf("write page %d: %w", id, ErrInjected)
	}
	s.writes++
	return s.Inner.WritePage(id, src)
}

// Allocate implements Store.
func (s *FaultStore) Allocate() (PageID, error) {
	if s.FailAllocAfter >= 0 && s.allocs >= s.FailAllocAfter {
		return 0, fmt.Errorf("allocate: %w", ErrInjected)
	}
	s.allocs++
	return s.Inner.Allocate()
}

// NumPages implements Store.
func (s *FaultStore) NumPages() int { return s.Inner.NumPages() }
