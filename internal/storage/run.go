package storage

import (
	"fmt"
	"io"
)

// Packed runs are the storage form of the packed-key mining engine: raw
// little-endian uint64 words packed 512 to a page, no tuple encoding, no
// per-page header. A run is an ordered page sequence plus a word count;
// whether the words are (tid, key) row pairs or a bare key column is the
// caller's contract. Runs are how the out-of-core SETM pipeline spills
// sorted row and key sequences through the buffer pool, so every page a
// spill touches shows up in the pool's Section 4.3 accounting.

// WordsPerPage is the number of uint64 words a run page holds.
const WordsPerPage = PageSize / 8

// PackedRow is one packed R_k row: a sign-flipped trans_id and the whole
// pattern bit-packed into one key word (item_1 in the most significant
// bits), so unsigned integer order equals (trans_id, pattern) order.
type PackedRow struct {
	Tid uint64
	Key uint64
}

// Less reports whether r orders before o by (Tid, Key).
func (r PackedRow) Less(o PackedRow) bool {
	return r.Tid < o.Tid || (r.Tid == o.Tid && r.Key < o.Key)
}

// Run is a spilled word sequence: the pages it occupies, in order, and
// the number of words written. The zero Run is empty.
type Run struct {
	pages []PageID
	words int64
}

// Words returns the number of uint64 words in the run.
func (r Run) Words() int64 { return r.words }

// Rows returns the number of PackedRow pairs in the run.
func (r Run) Rows() int64 { return r.words / 2 }

// Pages returns the page footprint of the run.
func (r Run) Pages() int { return len(r.pages) }

// Bytes returns the payload size of the run in bytes.
func (r Run) Bytes() int64 { return r.words * 8 }

// Free returns the run's pages to the pool's free list; the run must not
// be read afterwards.
func (r *Run) Free(pool *Pool) {
	pool.FreePages(r.pages)
	r.pages = nil
	r.words = 0
}

// RunWriter appends words to a fresh run through the buffer pool. It
// keeps at most one page pinned. After any error the writer is inert:
// further appends return the same error and Close frees the partial run.
type RunWriter struct {
	pool *Pool
	run  Run
	pg   *Page
	off  int // word offset within pg
	err  error
}

// NewRunWriter starts an empty run in pool.
func NewRunWriter(pool *Pool) *RunWriter { return &RunWriter{pool: pool} }

// Word appends one word.
func (w *RunWriter) Word(v uint64) error {
	if w.err != nil {
		return w.err
	}
	if w.pg == nil {
		pg, err := w.pool.Allocate()
		if err != nil {
			w.err = fmt.Errorf("storage: run writer: %w", err)
			return w.err
		}
		w.pg = pg
		w.off = 0
		w.run.pages = append(w.run.pages, pg.ID)
	}
	w.pg.PutU64(w.off*8, v)
	w.off++
	w.run.words++
	if w.off == WordsPerPage {
		w.pool.Unpin(w.pg)
		w.pg = nil
	}
	return nil
}

// Row appends one (tid, key) pair.
func (w *RunWriter) Row(r PackedRow) error {
	if err := w.Word(r.Tid); err != nil {
		return err
	}
	return w.Word(r.Key)
}

// Rows appends every row of rs.
func (w *RunWriter) Rows(rs []PackedRow) error {
	for _, r := range rs {
		if err := w.Row(r); err != nil {
			return err
		}
	}
	return nil
}

// Keys appends every word of ks.
func (w *RunWriter) Keys(ks []uint64) error {
	for _, k := range ks {
		if err := w.Word(k); err != nil {
			return err
		}
	}
	return nil
}

// Close unpins the tail page and returns the finished run. If any append
// failed, Close frees the partial run's pages and returns that error;
// either way the writer holds no pins afterwards.
func (w *RunWriter) Close() (Run, error) {
	if w.pg != nil {
		w.pool.Unpin(w.pg)
		w.pg = nil
	}
	if w.err != nil {
		w.run.Free(w.pool)
		return Run{}, w.err
	}
	return w.run, nil
}

// runReadAhead is the number of consecutive pages a reader decodes per
// fill. Batching keeps physical reads sequential even when several runs
// are merged concurrently (each reader advances runReadAhead adjacent
// pages at a time instead of interleaving single pages), at the cost of
// a small fixed word buffer per open reader.
const runReadAhead = 4

// RunReadAheadBytes is the heap footprint of one open reader's word
// buffer — the quantity a memory budget must charge per run held open
// in a k-way merge.
const RunReadAheadBytes = runReadAhead * PageSize

// RunReader streams a run's words front to back through the buffer pool.
// Pages are fetched runReadAhead at a time, decoded into a word buffer,
// and unpinned immediately, so a reader never holds a pin between calls.
// Word returns io.EOF after the last word; any I/O error is sticky.
// Close is idempotent (and, since no pin outlives a call, optional on
// the success path — but error paths should still call it).
type RunReader struct {
	pool     *Pool
	run      Run
	idx      int // next page index
	buf      []uint64
	pos      int
	consumed int64
	err      error
}

// NewRunReader opens a reader over run.
func NewRunReader(pool *Pool, run Run) *RunReader {
	return &RunReader{pool: pool, run: run}
}

// fill decodes the next read-ahead window into the word buffer.
func (r *RunReader) fill() error {
	if r.buf == nil {
		r.buf = make([]uint64, 0, runReadAhead*WordsPerPage)
	}
	r.buf = r.buf[:0]
	r.pos = 0
	for p := 0; p < runReadAhead && r.idx < len(r.run.pages); p++ {
		pg, err := r.pool.Fetch(r.run.pages[r.idx])
		if err != nil {
			r.err = fmt.Errorf("storage: run reader: %w", err)
			return r.err
		}
		n := r.run.words - int64(r.idx)*WordsPerPage
		if n > WordsPerPage {
			n = WordsPerPage
		}
		for w := int64(0); w < n; w++ {
			r.buf = append(r.buf, pg.U64(int(w)*8))
		}
		r.pool.Unpin(pg)
		r.idx++
	}
	return nil
}

// Word returns the next word, or io.EOF at the end of the run.
func (r *RunReader) Word() (uint64, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.consumed >= r.run.words {
		return 0, io.EOF
	}
	if r.pos >= len(r.buf) {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	v := r.buf[r.pos]
	r.pos++
	r.consumed++
	return v, nil
}

// Row returns the next (tid, key) pair, or io.EOF at the end. A run with
// an odd word tail is corrupt and yields an error, never a partial row.
func (r *RunReader) Row() (PackedRow, error) {
	tid, err := r.Word()
	if err != nil {
		return PackedRow{}, err
	}
	key, err := r.Word()
	if err == io.EOF {
		err = fmt.Errorf("storage: run reader: odd word count %d in row run", r.run.words)
		r.err = err
	}
	if err != nil {
		return PackedRow{}, err
	}
	return PackedRow{Tid: tid, Key: key}, nil
}

// Close releases the reader's resources. Idempotent; the reader holds
// no pins between calls, so this only drops the word buffer.
func (r *RunReader) Close() {
	r.buf = nil
}
