package storage

import (
	"fmt"
	"io"
)

// Packed runs are the storage form of the packed-key mining engine: raw
// little-endian uint64 words packed 512 to a page, no tuple encoding, no
// per-page header. A run is an ordered page sequence plus a word count;
// whether the words are (tid, key) row pairs or a bare key column is the
// caller's contract. Runs are how the out-of-core SETM pipeline spills
// sorted row and key sequences through the buffer pool, so every page a
// spill touches shows up in the pool's Section 4.3 accounting.

// WordsPerPage is the number of uint64 words a run page holds.
const WordsPerPage = PageSize / 8

// PackedRow is one packed R_k row: a sign-flipped trans_id and the whole
// pattern bit-packed into one key word (item_1 in the most significant
// bits), so unsigned integer order equals (trans_id, pattern) order.
type PackedRow struct {
	Tid uint64
	Key uint64
}

// Less reports whether r orders before o by (Tid, Key).
func (r PackedRow) Less(o PackedRow) bool {
	return r.Tid < o.Tid || (r.Tid == o.Tid && r.Key < o.Key)
}

// Run is a spilled word sequence: the pages it occupies, in order, and
// the number of words written. The zero Run is empty.
type Run struct {
	pages []PageID
	words int64
}

// Words returns the number of uint64 words in the run.
func (r Run) Words() int64 { return r.words }

// Rows returns the number of PackedRow pairs in the run.
func (r Run) Rows() int64 { return r.words / 2 }

// Pages returns the page footprint of the run.
func (r Run) Pages() int { return len(r.pages) }

// Bytes returns the payload size of the run in bytes.
func (r Run) Bytes() int64 { return r.words * 8 }

// Free returns the run's pages to the pool's free list; the run must not
// be read afterwards.
func (r *Run) Free(pool *Pool) {
	pool.FreePages(r.pages)
	r.pages = nil
	r.words = 0
}

// PageView returns a non-owning view of pages [lo, hi) of the run, with
// the word count clipped to the words those pages actually hold. Views
// let morsel-parallel readers scan disjoint stretches of one run
// concurrently; they alias the parent's pages, so only the parent may be
// freed. Page boundaries align to rows (WordsPerPage is even), so a row
// run's view never splits a (tid, key) pair.
func (r Run) PageView(lo, hi int) Run {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.pages) {
		hi = len(r.pages)
	}
	if lo >= hi {
		return Run{}
	}
	words := r.words - int64(lo)*WordsPerPage
	if max := int64(hi-lo) * WordsPerPage; words > max {
		words = max
	}
	if words < 0 {
		words = 0
	}
	return Run{pages: r.pages[lo:hi], words: words}
}

// RowAt fetches the (tid, key) row at index i with a single page access
// — the probe primitive behind binary searches over a sorted row run
// (morsel boundary tids, join-side seeks).
func (r Run) RowAt(pool *Pool, i int64) (PackedRow, error) {
	if i < 0 || i >= r.Rows() {
		return PackedRow{}, fmt.Errorf("storage: row %d out of range (run has %d rows)", i, r.Rows())
	}
	w := 2 * i
	pg, err := pool.Fetch(r.pages[w/WordsPerPage])
	if err != nil {
		return PackedRow{}, err
	}
	off := int(w%WordsPerPage) * 8
	row := PackedRow{Tid: pg.U64(off), Key: pg.U64(off + 8)}
	pool.Unpin(pg)
	return row, nil
}

// RunWriter appends words to a fresh run through the buffer pool. It
// keeps at most one page pinned. After any error the writer is inert:
// further appends return the same error and Close frees the partial run.
type RunWriter struct {
	pool *Pool
	run  Run
	pg   *Page
	off  int // word offset within pg
	err  error
}

// NewRunWriter starts an empty run in pool.
func NewRunWriter(pool *Pool) *RunWriter { return &RunWriter{pool: pool} }

// Word appends one word.
func (w *RunWriter) Word(v uint64) error {
	if w.err != nil {
		return w.err
	}
	if w.pg == nil {
		pg, err := w.pool.Allocate()
		if err != nil {
			w.err = fmt.Errorf("storage: run writer: %w", err)
			return w.err
		}
		w.pg = pg
		w.off = 0
		w.run.pages = append(w.run.pages, pg.ID)
	}
	w.pg.PutU64(w.off*8, v)
	w.off++
	w.run.words++
	if w.off == WordsPerPage {
		w.pool.Unpin(w.pg)
		w.pg = nil
	}
	return nil
}

// Row appends one (tid, key) pair.
func (w *RunWriter) Row(r PackedRow) error {
	if err := w.Word(r.Tid); err != nil {
		return err
	}
	return w.Word(r.Key)
}

// ensurePage makes sure a page is open for appending.
func (w *RunWriter) ensurePage() error {
	if w.err != nil {
		return w.err
	}
	if w.pg == nil {
		pg, err := w.pool.Allocate()
		if err != nil {
			w.err = fmt.Errorf("storage: run writer: %w", err)
			return w.err
		}
		w.pg = pg
		w.off = 0
		w.run.pages = append(w.run.pages, pg.ID)
	}
	return nil
}

// closePageIfFull unpins a filled page.
func (w *RunWriter) closePageIfFull() {
	if w.off == WordsPerPage {
		w.pool.Unpin(w.pg)
		w.pg = nil
	}
}

// Rows appends every row of rs, bulk-encoding whole page stretches — the
// hot path of the mining executor's spill appenders.
func (w *RunWriter) Rows(rs []PackedRow) error {
	for len(rs) > 0 {
		if err := w.ensurePage(); err != nil {
			return err
		}
		if w.off%2 != 0 {
			// A stray odd offset (mixed Word use): fall back per row.
			if err := w.Row(rs[0]); err != nil {
				return err
			}
			rs = rs[1:]
			continue
		}
		n := (WordsPerPage - w.off) / 2
		if n > len(rs) {
			n = len(rs)
		}
		base := w.off * 8
		for i := 0; i < n; i++ {
			w.pg.PutU64(base+i*16, rs[i].Tid)
			w.pg.PutU64(base+i*16+8, rs[i].Key)
		}
		w.off += 2 * n
		w.run.words += int64(2 * n)
		rs = rs[n:]
		w.closePageIfFull()
	}
	return nil
}

// Keys appends every word of ks, bulk-encoding whole page stretches.
func (w *RunWriter) Keys(ks []uint64) error {
	for len(ks) > 0 {
		if err := w.ensurePage(); err != nil {
			return err
		}
		n := WordsPerPage - w.off
		if n > len(ks) {
			n = len(ks)
		}
		base := w.off * 8
		for i := 0; i < n; i++ {
			w.pg.PutU64(base+i*8, ks[i])
		}
		w.off += n
		w.run.words += int64(n)
		ks = ks[n:]
		w.closePageIfFull()
	}
	return nil
}

// Close unpins the tail page and returns the finished run. If any append
// failed, Close frees the partial run's pages and returns that error;
// either way the writer holds no pins afterwards.
func (w *RunWriter) Close() (Run, error) {
	if w.pg != nil {
		w.pool.Unpin(w.pg)
		w.pg = nil
	}
	if w.err != nil {
		w.run.Free(w.pool)
		return Run{}, w.err
	}
	return w.run, nil
}

// runReadAhead is the number of consecutive pages a reader decodes per
// fill. Batching keeps physical reads sequential even when several runs
// are merged concurrently (each reader advances runReadAhead adjacent
// pages at a time instead of interleaving single pages), at the cost of
// a small fixed word buffer per open reader.
const runReadAhead = 4

// RunReadAheadBytes is the heap footprint of one open reader's word
// buffer — the quantity a memory budget must charge per run held open
// in a k-way merge.
const RunReadAheadBytes = runReadAhead * PageSize

// RunReader streams a run's words front to back through the buffer pool.
// Pages are fetched runReadAhead at a time, decoded into a word buffer,
// and unpinned immediately, so a reader never holds a pin between calls.
// Word returns io.EOF after the last word; any I/O error is sticky.
// Close is idempotent (and, since no pin outlives a call, optional on
// the success path — but error paths should still call it).
type RunReader struct {
	pool     *Pool
	run      Run
	idx      int // next page index
	buf      []uint64
	pos      int
	consumed int64
	err      error
}

// NewRunReader opens a reader over run.
func NewRunReader(pool *Pool, run Run) *RunReader {
	return &RunReader{pool: pool, run: run}
}

// NewRunReaderAt opens a reader positioned at the start of page
// startPage (clamped to the run). The words of earlier pages count as
// consumed, so ConsumedRows reports absolute positions within the run —
// what a morsel worker needs to honour a global row boundary.
func NewRunReaderAt(pool *Pool, run Run, startPage int) *RunReader {
	if startPage < 0 {
		startPage = 0
	}
	if startPage > len(run.pages) {
		startPage = len(run.pages)
	}
	consumed := int64(startPage) * WordsPerPage
	if consumed > run.words {
		consumed = run.words
	}
	return &RunReader{pool: pool, run: run, idx: startPage, consumed: consumed}
}

// ConsumedRows returns the absolute number of (tid, key) rows consumed
// from the front of the run, counting the pages a NewRunReaderAt start
// position skipped.
func (r *RunReader) ConsumedRows() int64 { return r.consumed / 2 }

// fill decodes the next read-ahead window into the word buffer.
func (r *RunReader) fill() error {
	if r.buf == nil {
		r.buf = make([]uint64, 0, runReadAhead*WordsPerPage)
	}
	r.buf = r.buf[:0]
	r.pos = 0
	for p := 0; p < runReadAhead && r.idx < len(r.run.pages); p++ {
		pg, err := r.pool.Fetch(r.run.pages[r.idx])
		if err != nil {
			r.err = fmt.Errorf("storage: run reader: %w", err)
			return r.err
		}
		n := int(r.run.words - int64(r.idx)*WordsPerPage)
		if n > WordsPerPage {
			n = WordsPerPage
		}
		base := len(r.buf)
		r.buf = r.buf[:base+n]
		for w := 0; w < n; w++ {
			r.buf[base+w] = pg.U64(w * 8)
		}
		r.pool.Unpin(pg)
		r.idx++
	}
	return nil
}

// Word returns the next word, or io.EOF at the end of the run.
func (r *RunReader) Word() (uint64, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.consumed >= r.run.words {
		return 0, io.EOF
	}
	if r.pos >= len(r.buf) {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	v := r.buf[r.pos]
	r.pos++
	r.consumed++
	return v, nil
}

// Block returns the next decoded stretch of the run's words, refilling
// the read-ahead buffer as needed; the slice is valid until the next
// Block/Word call and its words count as consumed. Mid-run blocks cover
// whole pages, so for row runs a (tid, key) pair never straddles two
// blocks. Returns io.EOF at the end. Block is the bulk alternative to
// Word — the mining executor's cursors and the k-way merge iterate
// blocks to shed the per-word call overhead.
func (r *RunReader) Block() ([]uint64, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.consumed >= r.run.words {
		return nil, io.EOF
	}
	if r.pos >= len(r.buf) {
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	blk := r.buf[r.pos:]
	r.pos = len(r.buf)
	r.consumed += int64(len(blk))
	return blk, nil
}

// Row returns the next (tid, key) pair, or io.EOF at the end. A run with
// an odd word tail is corrupt and yields an error, never a partial row.
func (r *RunReader) Row() (PackedRow, error) {
	tid, err := r.Word()
	if err != nil {
		return PackedRow{}, err
	}
	key, err := r.Word()
	if err == io.EOF {
		err = fmt.Errorf("storage: run reader: odd word count %d in row run", r.run.words)
		r.err = err
	}
	if err != nil {
		return PackedRow{}, err
	}
	return PackedRow{Tid: tid, Key: key}, nil
}

// Close releases the reader's resources. Idempotent; the reader holds
// no pins between calls, so this only drops the word buffer.
func (r *RunReader) Close() {
	r.buf = nil
}
