package costmodel

import (
	"testing"
)

// TestChoosePlanSpillFlip pins the resident→spilled transition to the
// exact point where the modeled packed footprint crosses the budget.
func TestChoosePlanSpillFlip(t *testing.T) {
	in := PlanInput{K: 2, PrevRRows: 10_000, AvgBasket: 6, PackedOK: true, Workers: 1}
	foot := PackedIterFootprint(EstRPrimeRows(in.PrevRRows, in.AvgBasket))
	if foot <= 0 {
		t.Fatalf("footprint = %d, want > 0", foot)
	}

	in.Budget = foot // exactly at the budget: still resident
	if c := ChoosePlan(in); c.Spill {
		t.Errorf("budget == footprint (%d): plan spilled, want resident", foot)
	}
	in.Budget = foot - 1 // one byte under: must spill
	if c := ChoosePlan(in); !c.Spill {
		t.Errorf("budget = footprint-1 (%d): plan resident, want spilled", foot-1)
	}
	in.Budget = 0 // unbounded: never spills
	if c := ChoosePlan(in); c.Spill {
		t.Error("unbounded budget spilled")
	}
	in.Budget = -1
	if c := ChoosePlan(in); c.Spill {
		t.Error("negative (explicitly unbounded) budget spilled")
	}
}

// TestChoosePlanFootprintModel pins the footprint arithmetic the flip
// test relies on: R'_k rows + key column + filtered R_k, all packed.
func TestChoosePlanFootprintModel(t *testing.T) {
	if got, want := PackedIterFootprint(1000), int64(1000*(16+8+16)); got != want {
		t.Errorf("PackedIterFootprint(1000) = %d, want %d", got, want)
	}
	if got := PackedIterFootprint(0); got != 0 {
		t.Errorf("PackedIterFootprint(0) = %d, want 0", got)
	}
	// The projection: each surviving pattern extends by half the mean
	// basket, never shrinking below one extension per row.
	if got, want := EstRPrimeRows(100, 8), int64(400); got != want {
		t.Errorf("EstRPrimeRows(100, 8) = %d, want %d", got, want)
	}
	if got, want := EstRPrimeRows(100, 1), int64(100); got != want {
		t.Errorf("EstRPrimeRows(100, 1) = %d, want %d", got, want)
	}
}

// TestChoosePlanWorkers: large relations fan out across the available
// CPUs, small ones stay serial, mid-size ones on many-core machines get
// the cost-minimizing intermediate fan-out (not all-or-nothing), and a
// spilled regime is capped by the pool's frame capacity.
func TestChoosePlanWorkers(t *testing.T) {
	big := PlanInput{K: 2, PrevRRows: 500_000, AvgBasket: 10, PackedOK: true, Workers: 8, PoolFrames: 256}
	if c := ChoosePlan(big); c.Workers != 8 {
		t.Errorf("big resident iteration: workers = %d, want 8", c.Workers)
	}
	small := big
	small.PrevRRows = 10
	if c := ChoosePlan(small); c.Workers != 1 {
		t.Errorf("tiny iteration: workers = %d, want 1", c.Workers)
	}
	// Mid-size work on a 64-way box: full fan-out costs more in dispatch
	// than it saves, but an intermediate fan-out still beats serial.
	mid := PlanInput{K: 2, PrevRRows: 1500, AvgBasket: 4, PackedOK: true, Workers: 64, PoolFrames: 256}
	cm := ChoosePlan(mid)
	if cm.EstRPrime < ParallelMinRows {
		t.Fatalf("mid estimate %d below the parallel threshold; adjust the fixture", cm.EstRPrime)
	}
	if cm.Workers <= 1 || cm.Workers >= 64 {
		t.Errorf("mid-size on 64 CPUs: workers = %d, want an intermediate fan-out", cm.Workers)
	}
	serial := ChoosePlan(PlanInput{K: 2, PrevRRows: 1500, AvgBasket: 4, PackedOK: true, Workers: 1, PoolFrames: 256})
	if cm.EstMs >= serial.EstMs {
		t.Errorf("chosen fan-out models %.3f ms, serial %.3f ms", cm.EstMs, serial.EstMs)
	}
	spilled := big
	spilled.Budget = 1 << 10
	spilled.PoolFrames = 8
	c := ChoosePlan(spilled)
	if !c.Spill {
		t.Fatal("1 KB budget did not spill")
	}
	if c.Workers > SpillWorkerCap(spilled.PoolFrames) {
		t.Errorf("spilled workers = %d exceed pool cap %d", c.Workers, SpillWorkerCap(spilled.PoolFrames))
	}
	if c.Workers < 1 {
		t.Errorf("workers = %d, want >= 1", c.Workers)
	}
}

// TestChoosePlanObservedCandidateCap: from k >= 3 the observed
// |R'_{k-1}| caps the basket-based projection — candidate growth is
// front-loaded, so a shrinking run must not keep planning for the
// worst case.
func TestChoosePlanObservedCandidateCap(t *testing.T) {
	in := PlanInput{K: 3, PrevRRows: 10_000, PrevRPrime: 12_000, AvgBasket: 10, PackedOK: true, Workers: 1}
	c := ChoosePlan(in)
	if c.EstRPrime != 12_000 { // basket model would say 50,000
		t.Errorf("k=3 estimate = %d, want the observed cap 12000", c.EstRPrime)
	}
	in.K = 2 // the first extension may legitimately grow past |R'_1|
	if c := ChoosePlan(in); c.EstRPrime != 50_000 {
		t.Errorf("k=2 estimate = %d, want the uncapped 50000", c.EstRPrime)
	}
}

// TestChoosePlanCheckpointCharge: a checkpointing iteration pays a
// serial I/O term — the modeled cost rises, spilled plans pay the extra
// read-back, and because the charge cannot be divided across workers it
// never increases the chosen fan-out.
func TestChoosePlanCheckpointCharge(t *testing.T) {
	in := PlanInput{K: 2, PrevRRows: 500_000, AvgBasket: 10, PackedOK: true, Workers: 8, PoolFrames: 256}
	plain := ChoosePlan(in)
	in.Checkpoint = true
	ck := ChoosePlan(in)
	if ck.EstMs <= plain.EstMs {
		t.Errorf("checkpointing modeled at %.3f ms, plain %.3f ms: charge missing", ck.EstMs, plain.EstMs)
	}
	if ck.Workers > plain.Workers {
		t.Errorf("serial checkpoint charge raised fan-out: %d > %d", ck.Workers, plain.Workers)
	}
	// The explicit charge: resident writes once, spilled also reads back.
	rows := int64(100_000)
	res := CheckpointMs(rows, false)
	sp := CheckpointMs(rows, true)
	if res <= 0 || sp != 2*res {
		t.Errorf("CheckpointMs: resident %.3f, spilled %.3f, want spilled = 2x resident > 0", res, sp)
	}
	if CheckpointMs(0, false) != 0 || CheckpointMs(-5, true) != 0 {
		t.Error("CheckpointMs of empty relation must be free")
	}
	// And the whole-plan delta equals the charge for the chosen estimate.
	serialIn := PlanInput{K: 2, PrevRRows: 10, AvgBasket: 2, PackedOK: true, Workers: 1}
	base := ChoosePlan(serialIn)
	serialIn.Checkpoint = true
	withCk := ChoosePlan(serialIn)
	if want := base.EstMs + CheckpointMs(base.EstRPrime, base.Spill); withCk.EstMs != want {
		t.Errorf("serial plan with checkpoint = %.6f ms, want %.6f", withCk.EstMs, want)
	}
}

// TestParallelMsMonotonic: more workers never make the modeled cost
// negative, and the overhead term makes tiny work prefer serial.
func TestParallelMsMonotonic(t *testing.T) {
	if got := ParallelMs(100, 1); got != 100 {
		t.Errorf("ParallelMs(100, 1) = %v, want 100", got)
	}
	if got := ParallelMs(100, 4); got <= 0 || got >= 100 {
		t.Errorf("ParallelMs(100, 4) = %v, want in (0, 100)", got)
	}
	if got := ParallelMs(0.001, 8); got <= 0.001 {
		t.Errorf("ParallelMs(0.001, 8) = %v: fan-out overhead should dominate tiny work", got)
	}
}

func TestRadixSortMs(t *testing.T) {
	if got := RadixSortMs(0, 2); got != 0 {
		t.Errorf("RadixSortMs(0) = %v", got)
	}
	if RadixSortMs(1000, 4) <= RadixSortMs(1000, 2) {
		t.Error("more radix passes must cost more")
	}
	if RadixSortMs(1000, 0) != RadixSortMs(1000, 2) {
		t.Error("pass count <= 0 must default to the narrow-domain count")
	}
}

// TestMineFootprint pins the admission estimate's contracts: monotone in
// dataset size, capped by a positive per-job budget, floored at one
// page, and saturating rather than overflowing on adversarial inputs.
func TestMineFootprint(t *testing.T) {
	small := MineFootprint(1000, 5, 0)
	big := MineFootprint(100000, 5, 0)
	if small <= 0 || big <= small {
		t.Fatalf("footprint not monotone: small=%d big=%d", small, big)
	}
	if want := int64(1000 * PackedRowBytes); small <= want {
		t.Fatalf("unbounded footprint %d does not exceed R_1 bytes %d", small, want)
	}

	// A positive budget caps the iteration term: the bounded estimate
	// must not exceed R_1 + budget, and a tiny budget must bite.
	const budget = 64 << 10
	bounded := MineFootprint(100000, 5, budget)
	if maxWant := int64(100000*PackedRowBytes) + budget; bounded > maxWant {
		t.Fatalf("bounded footprint %d exceeds R_1 + budget %d", bounded, maxWant)
	}
	if bounded >= big {
		t.Fatalf("budget did not reduce footprint: bounded=%d unbounded=%d", bounded, big)
	}

	// Degenerate and adversarial inputs: positive floor, no overflow.
	if got := MineFootprint(0, 0, 0); got <= 0 {
		t.Fatalf("empty dataset footprint = %d, want positive floor", got)
	}
	if got := MineFootprint(int64(1)<<62, 1e18, 0); got <= 0 {
		t.Fatalf("adversarial footprint overflowed: %d", got)
	}
}

// TestDeltaFootprint pins the incremental-refresh admission charge:
// monotone in delta size and snapshot cardinality, budget-capped like
// MineFootprint, floored at one page, saturating on adversarial inputs
// — and, for small deltas, far below the cold-mine charge it replaces.
func TestDeltaFootprint(t *testing.T) {
	small := DeltaFootprint(100, 5, 5000, 0)
	bigDelta := DeltaFootprint(100000, 5, 5000, 0)
	bigBorder := DeltaFootprint(100, 5, 5000000, 0)
	if small <= 0 || bigDelta <= small || bigBorder <= small {
		t.Fatalf("not monotone: small=%d bigDelta=%d bigBorder=%d", small, bigDelta, bigBorder)
	}
	// The merge term is exactly two counted-entry arrays.
	if want := int64(5000 * 2 * (PackedKeyBytes + PackedCountBytes)); small <= want {
		t.Fatalf("footprint %d does not exceed merge term %d", small, want)
	}

	const budget = 64 << 10
	bounded := DeltaFootprint(100000, 5, 5000, budget)
	if maxWant := int64(100000*PackedRowBytes) + budget + int64(5000*2*(PackedKeyBytes+PackedCountBytes)); bounded > maxWant {
		t.Fatalf("bounded footprint %d exceeds rows + budget + merge %d", bounded, maxWant)
	}
	if bounded >= bigDelta {
		t.Fatalf("budget did not bite: bounded=%d unbounded=%d", bounded, bigDelta)
	}

	// The point of the whole exercise: a 1% delta admits far cheaper
	// than a cold re-mine of the combined dataset.
	cold := MineFootprint(101000, 5, 0)
	incr := DeltaFootprint(1000, 5, 20000, 0)
	if incr*5 > cold {
		t.Fatalf("delta admission %d not ≥5x below cold %d", incr, cold)
	}

	if got := DeltaFootprint(0, 0, 0, 0); got <= 0 {
		t.Fatalf("empty delta footprint = %d, want positive floor", got)
	}
	if got := DeltaFootprint(int64(1)<<62, 1e18, int64(1)<<62, 0); got <= 0 {
		t.Fatalf("adversarial footprint overflowed: %d", got)
	}
	if got := DeltaFootprint(-5, 2, -7, 0); got <= 0 {
		t.Fatalf("negative inputs not clamped: %d", got)
	}
}
