package costmodel

import (
	"math"
	"strings"
	"testing"
)

// TestNestedLoopAnalysis pins every number of Section 3.2.
func TestNestedLoopAnalysis(t *testing.T) {
	r := NestedLoopAnalysis(PaperWorkload(), PaperDBParams(), 0.005)

	// "The number of leaf pages in the B+-tree index on (item, trans-id)
	// is 2,000,000/500 ≈ 4,000."
	if r.ItemTid.EntriesPerLeaf != 500 {
		t.Errorf("entries per leaf = %d, want 500", r.ItemTid.EntriesPerLeaf)
	}
	if r.ItemTid.LeafPages != 4000 {
		t.Errorf("(item,tid) leaf pages = %d, want 4000", r.ItemTid.LeafPages)
	}
	// "we can store about 333 key-value/pointer pairs on a non-leaf page"
	if r.ItemTid.EntriesPerNonLeaf != 333 {
		t.Errorf("non-leaf fanout = %d, want 333", r.ItemTid.EntriesPerNonLeaf)
	}
	// "hence, L = 3" and "the number of non-leaf pages is 1 + 4,000/333 = 14"
	if r.ItemTid.Levels != 3 {
		t.Errorf("levels = %d, want 3", r.ItemTid.Levels)
	}
	if r.ItemTid.NonLeafPages != 14 {
		t.Errorf("(item,tid) non-leaf pages = %d, want 14", r.ItemTid.NonLeafPages)
	}
	// "the number of leaf pages is 2,000 and the number of non-leaf pages
	// is 5" for the (trans-id) index.
	if r.Tid.LeafPages != 2000 {
		t.Errorf("(tid) leaf pages = %d, want 2000", r.Tid.LeafPages)
	}
	if r.Tid.NonLeafPages != 5 {
		t.Errorf("(tid) non-leaf pages = %d, want 5", r.Tid.NonLeafPages)
	}
	// "the cardinality of C1 will be 1000"
	if r.C1Size != 1000 {
		t.Errorf("|C1| = %d, want 1000", r.C1Size)
	}
	// "1% × 4,000 leaf page fetches, i.e. ≈40" and "about 2,000
	// transaction-ids"
	if r.LeafFetchesPerC1Tuple != 40 {
		t.Errorf("leaf fetches per tuple = %d, want 40", r.LeafFetchesPerC1Tuple)
	}
	if r.TidFetchesPerC1Tuple != 2000 {
		t.Errorf("tid fetches per tuple = %d, want 2000", r.TidFetchesPerC1Tuple)
	}
	// "about 1000 × (40 + 2000 × 1) ≈ 2,000,000 page fetches"
	if r.TotalFetches != 2040000 {
		t.Errorf("total fetches = %d, want 2,040,000", r.TotalFetches)
	}
	if math.Abs(float64(r.TotalFetches)-2e6) > 0.05*2e6 {
		t.Errorf("total fetches %d not ≈2,000,000", r.TotalFetches)
	}
	// "the time for the first step alone is ≈40,000 seconds, which is more
	// than 11 hours"
	if math.Abs(r.Seconds-40800) > 1 {
		t.Errorf("seconds = %.0f, want 40,800", r.Seconds)
	}
	if r.Seconds/3600 < 11 {
		t.Errorf("%.1f hours, want > 11", r.Seconds/3600)
	}
}

// TestSortMergeAnalysis pins every number of Section 4.3.
func TestSortMergeAnalysis(t *testing.T) {
	w, p := PaperWorkload(), PaperDBParams()

	// "|R_i| is given by C(10,i) × 200,000"
	if got := w.RTuples(1); got != 2000000 {
		t.Errorf("|R_1| = %d, want 2,000,000", got)
	}
	if got := w.RTuples(2); got != 9000000 {
		t.Errorf("|R_2| = %d, want 9,000,000 (45 × 200,000)", got)
	}
	// "‖R_1‖ = 4,000 and ‖R_2‖ = 27,000"
	if got := RPages(w, p, 1); got != 4000 {
		t.Errorf("‖R_1‖ = %d, want 4,000", got)
	}
	if got := RPages(w, p, 2); got != 27000 {
		t.Errorf("‖R_2‖ = %d, want 27,000", got)
	}

	r := SortMergeAnalysis(w, p, 3)
	// "3 × 4,000 + 4 × 27,000 = 120,000"
	if r.HeadlineAccesses != 120000 {
		t.Errorf("headline accesses = %d, want 120,000", r.HeadlineAccesses)
	}
	// The text's formula itself evaluates to 116,000 (see report docs).
	if r.FormulaAccesses != 116000 {
		t.Errorf("formula accesses = %d, want 116,000", r.FormulaAccesses)
	}
	// "the total time spent on I/O operations is 1200 seconds or 10 minutes"
	if math.Abs(r.Seconds-1200) > 1 {
		t.Errorf("seconds = %.0f, want 1,200", r.Seconds)
	}
	// "In comparison, the nested-loop strategy required more than 11 hours"
	// — the modelled speedup is 40,800/1,200 = 34×.
	if r.SpeedupVsNestedLoop < 30 {
		t.Errorf("speedup = %.0f, want ≥ 30", r.SpeedupVsNestedLoop)
	}
}

func TestBTreeShapeSmall(t *testing.T) {
	p := PaperDBParams()
	// A tree that fits in one leaf has no non-leaf pages and 1 level.
	s := BTreeShape(100, 8, p)
	if s.LeafPages != 1 || s.NonLeafPages != 0 || s.Levels != 1 {
		t.Errorf("small shape = %+v", s)
	}
	// Two leaves need a root.
	s = BTreeShape(600, 8, p)
	if s.LeafPages != 2 || s.NonLeafPages != 1 || s.Levels != 2 {
		t.Errorf("two-leaf shape = %+v", s)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{10, 1, 10}, {10, 2, 45}, {10, 3, 120}, {10, 10, 1}, {10, 0, 1},
		{10, 11, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestHighSupportEmptiesC1(t *testing.T) {
	// With minimum support above the uniform item probability, no item
	// qualifies and the nested-loop cost collapses to zero.
	r := NestedLoopAnalysis(PaperWorkload(), PaperDBParams(), 0.02)
	if r.C1Size != 0 || r.TotalFetches != 0 {
		t.Errorf("C1 = %d, fetches = %d; want 0, 0", r.C1Size, r.TotalFetches)
	}
}

func TestReportsRender(t *testing.T) {
	nl := NestedLoopAnalysis(PaperWorkload(), PaperDBParams(), 0.005)
	sm := SortMergeAnalysis(PaperWorkload(), PaperDBParams(), 3)
	for _, s := range []string{nl.String(), sm.String()} {
		if len(s) == 0 {
			t.Error("empty report")
		}
	}
	if !strings.Contains(nl.String(), "2040000") {
		t.Errorf("nested-loop report missing total: %s", nl.String())
	}
	if !strings.Contains(sm.String(), "120000") {
		t.Errorf("sort-merge report missing headline: %s", sm.String())
	}
}

func TestPackedPages(t *testing.T) {
	for _, tc := range []struct {
		rows, bytesPerRow, want int64
	}{
		{0, 16, 0},
		{1, 16, 1},
		{256, 16, 1}, // exactly one 4096-byte page of packed rows
		{257, 16, 2},
		{512, 8, 1}, // one page of bare keys
		{100000, 16, 391},
	} {
		if got := PackedPages(tc.rows, tc.bytesPerRow); got != tc.want {
			t.Errorf("PackedPages(%d, %d) = %d, want %d", tc.rows, tc.bytesPerRow, got, tc.want)
		}
	}
}

func TestSpillRuns(t *testing.T) {
	for _, tc := range []struct {
		rows, bytesPerRow, budget, want int64
	}{
		{1000, 16, 0, 1},     // no budget: never spills
		{1000, 16, -5, 1},    // negative budget: never spills
		{1000, 16, 16000, 1}, // fits exactly
		{1000, 16, 15999, 2}, // one byte over: two runs
		{1000, 16, 4000, 4},
		{1000, 16, 1, 16000}, // degenerate tiny budget
		{0, 16, 1, 1},
	} {
		if got := SpillRuns(tc.rows, tc.bytesPerRow, tc.budget); got != tc.want {
			t.Errorf("SpillRuns(%d, %d, %d) = %d, want %d",
				tc.rows, tc.bytesPerRow, tc.budget, got, tc.want)
		}
	}
}
