// Package costmodel re-derives the paper's analytical evaluations: the
// nested-loop strategy's page-fetch estimate of Section 3.2 and the
// sort-merge strategy's page-access bound of Section 4.3. Every published
// intermediate number (index shapes, per-tuple fetch counts, relation page
// footprints, total accesses, seconds) is a computed quantity here, with
// tests pinning them to the paper's values.
package costmodel

import (
	"fmt"
	"math"
)

// DBParams are the storage-system constants of Section 3.2.
type DBParams struct {
	// UsablePageBytes is the per-page payload. The paper's arithmetic
	// (500 8-byte entries, 333 12-byte entries, 1000 4-byte entries per
	// 4 KB page) implies 4,000 usable bytes per page.
	UsablePageBytes int
	// ItemBytes and TidBytes are the field widths (4 each).
	ItemBytes int
	TidBytes  int
	// PtrBytes is the page-pointer width in non-leaf index entries (4).
	PtrBytes int
	// RandomPageMs is the cost of a random page fetch (20 ms).
	RandomPageMs float64
	// SeqPageMs is the cost of a sequential page access (10 ms).
	SeqPageMs float64
}

// PaperDBParams returns the constants used throughout the paper.
func PaperDBParams() DBParams {
	return DBParams{
		UsablePageBytes: 4000,
		ItemBytes:       4,
		TidBytes:        4,
		PtrBytes:        4,
		RandomPageMs:    20,
		SeqPageMs:       10,
	}
}

// UniformWorkload is the hypothetical retailing database of Section 3.2:
// items sold with equal probability.
type UniformWorkload struct {
	NumItems    int // 1,000
	NumTxns     int // 200,000
	ItemsPerTxn int // 10
}

// PaperWorkload returns the Section 3.2 parameters.
func PaperWorkload() UniformWorkload {
	return UniformWorkload{NumItems: 1000, NumTxns: 200000, ItemsPerTxn: 10}
}

// SalesTuples is the cardinality of SALES (2 million in the paper).
func (w UniformWorkload) SalesTuples() int64 {
	return int64(w.NumTxns) * int64(w.ItemsPerTxn)
}

// ItemProb is the probability an item appears in a transaction (1%).
func (w UniformWorkload) ItemProb() float64 {
	return float64(w.ItemsPerTxn) / float64(w.NumItems)
}

// IndexShape describes a B+-tree as the paper sizes it.
type IndexShape struct {
	EntriesPerLeaf    int
	LeafPages         int64
	EntriesPerNonLeaf int
	NonLeafPages      int64
	Levels            int
}

// BTreeShape sizes a data-containing B+-tree with numEntries leaf entries
// of entryBytes each, following Section 3.2: leaf pages hold the entries,
// non-leaf entries add a pointer, and non-leaf levels shrink by the fanout
// until one page remains.
func BTreeShape(numEntries int64, entryBytes int, p DBParams) IndexShape {
	s := IndexShape{
		EntriesPerLeaf:    p.UsablePageBytes / entryBytes,
		EntriesPerNonLeaf: p.UsablePageBytes / (entryBytes + p.PtrBytes),
	}
	s.LeafPages = ceilDiv(numEntries, int64(s.EntriesPerLeaf))
	s.Levels = 1
	pages := s.LeafPages
	for pages > 1 {
		pages = ceilDiv(pages, int64(s.EntriesPerNonLeaf))
		s.NonLeafPages += pages
		s.Levels++
	}
	return s
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// NestedLoopReport is the Section 3.2 analysis of generating C_2.
type NestedLoopReport struct {
	// ItemTid is the (item, trans_id) index: 4,000 leaf pages, 3 levels,
	// 14 non-leaf pages in the paper.
	ItemTid IndexShape
	// Tid is the (trans_id) index: 2,000 leaf pages, 5 non-leaf pages.
	Tid IndexShape
	// C1Size is the cardinality of C_1 (1,000 — every item qualifies).
	C1Size int64
	// LeafFetchesPerC1Tuple is the (item, trans_id) leaf pages touched per
	// C_1 tuple (≈40).
	LeafFetchesPerC1Tuple int64
	// TidFetchesPerC1Tuple is one fetch per matching transaction (≈2,000).
	TidFetchesPerC1Tuple int64
	// TotalFetches is the head-line number (≈2,000,000 in the paper).
	TotalFetches int64
	// Seconds at RandomPageMs per fetch (≈40,000 s, "more than 11 hours").
	Seconds float64
}

// NestedLoopAnalysis reproduces Section 3.2 for generating C_2 with the
// given minimum support fraction (0.5% in the paper).
func NestedLoopAnalysis(w UniformWorkload, p DBParams, minSupFrac float64) NestedLoopReport {
	r := NestedLoopReport{
		ItemTid: BTreeShape(w.SalesTuples(), p.ItemBytes+p.TidBytes, p),
		Tid:     BTreeShape(w.SalesTuples(), p.TidBytes, p),
	}
	// With uniform probabilities every item has support ItemProb (1%),
	// above the 0.5% minimum: all items qualify.
	if w.ItemProb() >= minSupFrac {
		r.C1Size = int64(w.NumItems)
	}
	r.LeafFetchesPerC1Tuple = int64(math.Round(w.ItemProb() * float64(r.ItemTid.LeafPages)))
	r.TidFetchesPerC1Tuple = int64(math.Round(w.ItemProb() * float64(w.NumTxns)))
	r.TotalFetches = r.C1Size * (r.LeafFetchesPerC1Tuple + r.TidFetchesPerC1Tuple)
	r.Seconds = float64(r.TotalFetches) * p.RandomPageMs / 1000
	return r
}

// RTuples is |R_i| in the worst case (no support elimination): every
// transaction contributes C(ItemsPerTxn, i) lexicographically ordered
// patterns.
func (w UniformWorkload) RTuples(i int) int64 {
	return binom(w.ItemsPerTxn, i) * int64(w.NumTxns)
}

func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := int64(1)
	for i := 0; i < k; i++ {
		out = out * int64(n-i) / int64(i+1)
	}
	return out
}

// RPages is ‖R_i‖: pages to store R_i with (i+1) 4-byte fields per tuple.
// The paper divides total bytes by usable page bytes (9M tuples × 12 B /
// 4,000 B = 27,000 pages) rather than flooring tuples per page; we follow
// suit so the published numbers reproduce exactly.
func RPages(w UniformWorkload, p DBParams, i int) int64 {
	tupleBytes := int64(i+1) * int64(p.ItemBytes)
	return ceilDiv(w.RTuples(i)*tupleBytes, int64(p.UsablePageBytes))
}

// SortMergeReport is the Section 4.3 analysis.
type SortMergeReport struct {
	// RPages[i-1] = ‖R_i‖ (paper: ‖R_1‖ = 4,000, ‖R_2‖ = 27,000).
	RPages []int64
	// FormulaAccesses evaluates the bound from the text:
	// (n−1)‖R_1‖ + Σ_{i=2}^{n−1}‖R_i‖ (merge-scan reads)
	// + Σ_{i=2}^{n}‖R'_i‖ (writes) + 2 Σ_{i=2}^{n}‖R'_i‖ (sort read+write),
	// with the worst case ‖R'_i‖ = ‖R_i‖.
	FormulaAccesses int64
	// HeadlineAccesses is the number as the paper presents it for n = 3:
	// 3·‖R_1‖ + 4·‖R_2‖ = 120,000. (The text's formula evaluates to
	// 116,000; the paper rounds up by folding in R_1's initial pass.)
	HeadlineAccesses int64
	// Seconds at SeqPageMs per access (paper: 1,200 s ≈ 10 minutes).
	Seconds float64
	// SpeedupVsNestedLoop compares against the Section 3.2 estimate.
	SpeedupVsNestedLoop float64
}

// SortMergeAnalysis reproduces Section 4.3: n is the first empty iteration
// (3 in the paper: "let R_3 be empty").
func SortMergeAnalysis(w UniformWorkload, p DBParams, n int) SortMergeReport {
	r := SortMergeReport{}
	for i := 1; i < n; i++ {
		r.RPages = append(r.RPages, RPages(w, p, i))
	}
	r1 := r.RPages[0]
	// Merge-scan reads: (n−1) passes over R_1 plus each stored R_i input.
	mergeReads := int64(n-1) * r1
	for i := 2; i <= n-1; i++ {
		mergeReads += r.RPages[i-1]
	}
	// Writes of the R'_i outputs and the re-read/re-write of each sort;
	// R'_n is empty by assumption, so sums run through n−1.
	var writes, sortIO int64
	for i := 2; i <= n-1; i++ {
		writes += r.RPages[i-1]
		sortIO += 2 * r.RPages[i-1]
	}
	r.FormulaAccesses = mergeReads + writes + sortIO
	if n == 3 {
		r.HeadlineAccesses = 3*r.RPages[0] + 4*r.RPages[1]
	} else {
		r.HeadlineAccesses = r.FormulaAccesses
	}
	r.Seconds = float64(r.HeadlineAccesses) * p.SeqPageMs / 1000
	nl := NestedLoopAnalysis(w, p, 0.005)
	if r.Seconds > 0 {
		r.SpeedupVsNestedLoop = nl.Seconds / r.Seconds
	}
	return r
}

// ---------------------------------------------------------------------------
// Engine-facing cost estimation
//
// The functions below generalize the paper's page arithmetic (Sections 3.2
// and 4.3) into per-operator cost formulas the SQL planner consults when
// choosing physical operators. Costs are expressed in model milliseconds
// on the paper's reference machine: sequential page accesses at SeqPageMs,
// random fetches at RandomPageMs, plus a small per-tuple CPU charge so
// that alternatives with identical I/O (e.g. in-memory joins of cached
// relations) still rank deterministically.

// CPUTupleMs is the per-tuple CPU charge used by the planner's cost
// formulas. The paper's model is pure I/O; this term only breaks ties and
// penalizes quadratic tuple-comparison counts, so its absolute value
// matters far less than its being positive.
const CPUTupleMs = 0.0001

// PagesFor returns the page footprint of a relation of rows tuples at
// bytesPerRow each, using the paper's convention of dividing total bytes
// by the usable page payload (see RPages).
func PagesFor(p DBParams, rows, bytesPerRow int64) int64 {
	if rows <= 0 {
		return 1
	}
	return ceilDiv(rows*bytesPerRow, int64(p.UsablePageBytes))
}

// SeqScanMs is the cost of one sequential pass over pages.
func SeqScanMs(p DBParams, pages int64) float64 {
	return float64(pages) * p.SeqPageMs
}

// SortMs estimates sorting rows tuples of bytesPerRow bytes. An in-memory
// sort charges only comparison CPU (n log2 n); an external sort adds the
// paper's Section 4.3 accounting — write the runs, read them back — i.e.
// two extra sequential passes over the relation's pages.
func SortMs(p DBParams, rows, bytesPerRow int64, external bool) float64 {
	if rows <= 0 {
		return 0
	}
	n := float64(rows)
	cost := CPUTupleMs * n * log2(n)
	if external {
		cost += 2 * SeqScanMs(p, PagesFor(p, rows, bytesPerRow))
	}
	return cost
}

func log2(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(n)
}

// ---------------------------------------------------------------------------
// Packed-run arithmetic
//
// The out-of-core packed pipeline stores (tid, key) rows as raw 16-byte
// pairs (and bare key columns as 8-byte words) in fully packed 4 KB
// pages — no tuple encoding, no headers. Sort cost on that substrate is
// linear (byte-wise LSD radix), not comparison-based, and the
// spill-vs-RAM decision is a byte comparison against the memory budget.
// These formulas give the planner and the drivers one shared source for
// that arithmetic.

// PackedRowBytes is the width of one packed (tid, key) row.
const PackedRowBytes = 16

// PackedKeyBytes is the width of one packed key word.
const PackedKeyBytes = 8

// packedPageBytes is the full page payload of a packed run; unlike the
// tuple model's UsablePageBytes there is no header overhead (matches
// storage.PageSize).
const packedPageBytes = 4096

// PackedPages is the page footprint of rows packed at bytesPerRow with
// no encoding overhead.
func PackedPages(rows, bytesPerRow int64) int64 {
	if rows <= 0 {
		return 0
	}
	return ceilDiv(rows*bytesPerRow, packedPageBytes)
}

// SpillRuns is the number of budget-bounded sorted runs rows of
// bytesPerRow bytes generate: 1 means the sort completes in RAM; more
// means an external pass. A non-positive budget never spills.
func SpillRuns(rows, bytesPerRow, budget int64) int64 {
	if budget <= 0 || rows <= 0 {
		return 1
	}
	bytes := rows * bytesPerRow
	if bytes <= budget {
		return 1
	}
	return ceilDiv(bytes, budget)
}

// MergePassMs is the cost of the merge phase of a merge-scan join over
// pre-sorted inputs: one interleaved sequential pass over both relations.
// The inputs' own scan costs are charged by their subplans.
func MergePassMs(lrows, rrows int64) float64 {
	return CPUTupleMs * float64(lrows+rrows)
}

// HashJoinMs is the cost of building a hash table on the build side and
// probing it once per probe row. Building is charged double CPU (hash +
// insert) per the usual rule of thumb, which also makes a merge pass over
// two already-sorted inputs cheaper than hashing them — the planner then
// prefers the paper's formulation exactly when its precondition (sorted
// inputs) holds.
func HashJoinMs(buildRows, probeRows int64) float64 {
	return CPUTupleMs * (2*float64(buildRows) + float64(probeRows))
}

// NestedLoopMs is the cost of the rejected Section 3 strategy: the inner
// relation is scanned once per outer row. With the inner materialized in
// memory the rescans cost CPU rather than page fetches, so the charge is
// the pair count.
func NestedLoopMs(outerRows, innerRows int64) float64 {
	return CPUTupleMs * float64(outerRows) * maxf(float64(innerRows), 1)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RadixSortMs estimates a byte-wise LSD radix sort of rows fixed-width
// elements: a linear counting pass plus a linear placement pass per
// varying byte. The packed kernels typically touch only the bytes the
// key domain varies in; passes defaults to the common narrow-domain
// count when the caller cannot know better.
func RadixSortMs(rows int64, passes int) float64 {
	if rows <= 0 {
		return 0
	}
	if passes < 1 {
		passes = 2
	}
	return CPUTupleMs * float64(rows) * float64(2*passes)
}

// ---------------------------------------------------------------------------
// Per-iteration executor planning
//
// The adaptive mining executor chooses a strategy at the top of every
// SETM iteration — which kernel to run, whether the iteration's
// relations stay resident or stream through the buffer pool as packed
// runs, and how many workers to fan the kernels across — from the
// cardinalities the previous iteration *observed*. The functions below
// are the shared arithmetic for that choice: the paper's point (Sections
// 3.2/4.3) is precisely that SETM's per-pass cost is predictable from
// relation sizes, so a planner can pick the pass's execution strategy
// the way a DBMS picks a join order.

// ParallelFanoutMs is the modeled fixed cost of dispatching one worker
// goroutine and merging its partial result (chunk bookkeeping, one
// count-list merge head). It is deliberately coarse: like CPUTupleMs it
// exists to rank alternatives, not to predict wall-clock.
const ParallelFanoutMs = 0.05

// ParallelMs scales a perfectly divisible serial cost across workers and
// adds the per-worker fan-out overhead. Workers <= 1 returns serialMs
// unchanged.
func ParallelMs(serialMs float64, workers int) float64 {
	if workers <= 1 {
		return serialMs
	}
	return serialMs/float64(workers) + ParallelFanoutMs*float64(workers)
}

// ParallelScanMs models a heap scan split into page-range morsels over
// workers: the serial scan cost divides across the workers, plus the
// fan-out overhead — the same saturating shape as ParallelMs.
func ParallelScanMs(p DBParams, pages int64, workers int) float64 {
	return ParallelMs(SeqScanMs(p, pages), workers)
}

// ExchangeMs models moving rows through an exchange operator (Gather or
// Repartition): each row is copied once across the worker boundary (half
// a CPUTupleMs — a column copy, no decode), plus the per-worker channel
// and buffer setup. Workers <= 1 means no exchange and costs nothing.
func ExchangeMs(rows int64, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	if rows > maxModelRows {
		rows = maxModelRows
	}
	return CPUTupleMs*float64(rows)/2 + ParallelFanoutMs*float64(workers)
}

// HashGroupMs models hash aggregation of rows into groups distinct
// groups with sorted emission: one table probe per row (two tuple
// touches — hash and compare) plus the comparison sort of the distinct
// groups. The planner weighs it against SortMs(rows)+CPUTupleMs·rows for
// the sort-based alternative.
func HashGroupMs(rows, groups int64) float64 {
	if rows > maxModelRows {
		rows = maxModelRows
	}
	if groups > rows {
		groups = rows
	}
	if groups < 2 {
		groups = 2
	}
	probe := CPUTupleMs * 2 * float64(rows)
	emit := CPUTupleMs * float64(groups) * math.Log2(float64(groups))
	return probe + emit
}

// EstRPrimeRows projects |R'_k| from the observed |R_{k-1}| and the mean
// basket size |R_1|/|transactions|: a surviving length-(k-1) pattern is
// extended by the basket items greater than its last item — on average
// half the basket. The projection is the planner's working estimate, not
// a bound; the spilled regime's appenders enforce the budget regardless
// of how the estimate errs.
func EstRPrimeRows(prevRRows int64, avgBasket float64) int64 {
	if prevRRows <= 0 {
		return 0
	}
	ext := avgBasket / 2
	if ext < 1 || math.IsNaN(ext) {
		ext = 1
	}
	est := float64(prevRRows) * ext
	// Saturate: adversarial cardinalities must clamp, not wrap negative.
	if est >= float64(maxModelRows) {
		return maxModelRows
	}
	return int64(est)
}

// maxModelRows saturates the planner's row projections so the byte
// arithmetic downstream (tens of bytes per row) cannot overflow int64.
const maxModelRows = int64(1) << 56

// PackedIterFootprint models the resident bytes one packed SETM
// iteration needs for estRPrime candidate rows: the materialized R'_k
// rows, the key column the count step sorts, and the filtered R_k
// (worst case: every candidate survives).
func PackedIterFootprint(estRPrime int64) int64 {
	if estRPrime <= 0 {
		return 0
	}
	if estRPrime > maxModelRows {
		estRPrime = maxModelRows
	}
	return estRPrime * (PackedRowBytes + PackedKeyBytes + PackedRowBytes)
}

// MineFootprint estimates the peak resident bytes one whole mining job
// needs: the packed R_1 relation (salesRows (tid, key) rows, resident
// for every iteration's merge-scan) plus the dominant iteration's
// working set, projected from the first extension — the largest R'_k a
// run produces. A positive memBudget caps the iteration term, because
// the spilled regime streams past the budget instead of growing the
// working set; an unbounded job (memBudget <= 0) is charged its full
// projected footprint. This is the admission-control estimate a mining
// service sums across running jobs against its global memory budget —
// a planning quantity with the same contract as the rest of this file:
// good enough to rank and bound, not a guarantee.
func MineFootprint(salesRows int64, avgBasket float64, memBudget int64) int64 {
	if salesRows <= 0 {
		return packedPageBytes
	}
	if salesRows > maxModelRows {
		salesRows = maxModelRows
	}
	r1 := salesRows * PackedRowBytes
	iter := PackedIterFootprint(EstRPrimeRows(salesRows, avgBasket))
	if memBudget > 0 && iter > memBudget {
		iter = memBudget
	}
	total := r1 + iter
	if total < packedPageBytes {
		total = packedPageBytes
	}
	return total
}

// DeltaFootprint estimates the peak resident bytes one incremental
// (border-snapshot) refresh needs: the packed delta rows (resident for
// every iteration's merge-scan), the dominant delta iteration's working
// set projected from the delta's own first extension, and the candidate
// sum-merge — the snapshot's counted (key, count) entries plus the
// merged output, ~24 bytes per entry per side. A positive memBudget
// caps the iteration term exactly as MineFootprint does: past the
// budget the delta path falls back to the spilling executor, which
// streams instead of growing. This is the admission-control charge for
// a delta mine — strictly smaller than MineFootprint of the combined
// dataset whenever the delta is small, which is the point.
func DeltaFootprint(deltaRows int64, avgBasket float64, borderCandidates, memBudget int64) int64 {
	if deltaRows < 0 {
		deltaRows = 0
	}
	if deltaRows > maxModelRows {
		deltaRows = maxModelRows
	}
	if borderCandidates < 0 {
		borderCandidates = 0
	}
	if borderCandidates > maxModelRows {
		borderCandidates = maxModelRows
	}
	rows := deltaRows * PackedRowBytes
	iter := PackedIterFootprint(EstRPrimeRows(deltaRows, avgBasket))
	if memBudget > 0 && iter > memBudget {
		iter = memBudget
	}
	// Snapshot candidates live once as input and once in the merged
	// output: (key, count) pairs both sides.
	merge := borderCandidates * 2 * (PackedKeyBytes + PackedCountBytes)
	total := rows + iter + merge
	if total < packedPageBytes {
		total = packedPageBytes
	}
	return total
}

// PackedCountBytes is the width of one support counter riding next to a
// packed key in a counted run.
const PackedCountBytes = 8

// PlanInput is what the executor observed going into an iteration.
type PlanInput struct {
	K         int   // pattern length of the upcoming iteration
	PrevRRows int64 // |R_{k-1}| observed after the previous filter
	// PrevRPrime is |R'_{k-1}| observed before the filter; from k >= 3 it
	// caps the basket-based |R'_k| projection (see ChoosePlan).
	PrevRPrime int64
	AvgBasket  float64 // |R_1| / |transactions|
	PackedOK   bool    // pattern still fits one 64-bit packed key
	Budget     int64   // remaining MemoryBudget in bytes (<= 0: unbounded)
	Workers    int     // available CPUs (caller caps by Options.MaxWorkers)
	PoolFrames int     // buffer-pool frames available to a spilled regime
	// Checkpoint is whether the iteration persists a durable checkpoint
	// (Options.Checkpoint): one sequential write of R_k — plus, in the
	// spilled regime, a sequential read-back of the spilled relation —
	// charged to the plan as a serial (non-parallelizable) term.
	Checkpoint bool
}

// PlanChoice is ChoosePlan's decision, in engine-neutral terms.
type PlanChoice struct {
	Packed bool // packed-key kernels (false: generic fallback forced)
	Spill  bool // budget-bounded spilled regime instead of resident
	// Workers is the chosen fan-out (>= 1; spilled regimes are
	// additionally capped so concurrent writers cannot exhaust the pool).
	Workers int
	// EstRPrime and FootprintBytes expose the model's intermediate
	// quantities: the projected |R'_k| and the resident footprint whose
	// comparison against Budget decided Spill.
	EstRPrime      int64
	FootprintBytes int64
	// EstMs is the modeled cost of the iteration under the chosen plan.
	EstMs float64
}

// ParallelMinRows is the relation size below which fanning kernels out
// across workers costs more than it saves.
const ParallelMinRows = 2048

// SpillWorkerCap bounds a spilled regime's concurrent workers by the
// buffer pool: every worker holds a run-writer pin and read-ahead
// buffers, so the fan-out must stay well inside the frame capacity.
// Shared by ChoosePlan (so EstMs models the enforceable fan-out) and
// the executor's safety clamp (so arbitrary fixed strategies cannot
// exhaust the pool); returns at least 1.
func SpillWorkerCap(poolFrames int) int {
	w := poolFrames / 4
	if w < 1 {
		w = 1
	}
	return w
}

// ChoosePlan picks an iteration strategy from observed cardinalities:
// packed kernels whenever the pattern fits one key, the spilled regime
// exactly when the modeled packed footprint exceeds the budget, and the
// worker count that minimizes the modeled iteration cost. It never
// returns an invalid plan (Workers >= 1, Spill false when unbounded),
// whatever the inputs.
func ChoosePlan(in PlanInput) PlanChoice {
	c := PlanChoice{Packed: in.PackedOK, Workers: 1}
	c.EstRPrime = EstRPrimeRows(in.PrevRRows, in.AvgBasket)
	if in.K >= 3 && in.PrevRPrime > 0 && c.EstRPrime > in.PrevRPrime {
		// Candidate growth is front-loaded: once support pruning bites
		// (k >= 3), the candidate set has never been observed to outgrow
		// the previous iteration's, so the observed |R'_{k-1}| caps the
		// basket-based projection.
		c.EstRPrime = in.PrevRPrime
	}
	c.FootprintBytes = PackedIterFootprint(c.EstRPrime)
	c.Spill = in.Budget > 0 && c.FootprintBytes > in.Budget

	// The dominant modeled costs of one iteration: radix-sorting the key
	// column, the merge-scan extension and filter passes, and — when
	// spilled — the extra sequential write+read of the run pages.
	serial := RadixSortMs(c.EstRPrime, 2) + CPUTupleMs*float64(3*c.EstRPrime)
	if c.Spill {
		p := PaperDBParams()
		pages := PackedPages(c.EstRPrime, PackedRowBytes) + PackedPages(c.EstRPrime, PackedKeyBytes)
		serial += 2 * SeqScanMs(p, pages)
	}

	// A durable checkpoint is one writer streaming R_k to one file: it
	// never fans out, so it is charged outside the parallelizable term —
	// which also means it dampens the modeled benefit of extra workers.
	// A spilled iteration additionally re-reads the spilled R_k pages to
	// copy them into the checkpoint.
	var ckptMs float64
	if in.Checkpoint {
		ckptMs = CheckpointMs(c.EstRPrime, c.Spill)
	}
	c.EstMs = serial + ckptMs

	maxW := in.Workers
	if maxW < 1 {
		maxW = 1
	}
	if c.Spill {
		if byPool := SpillWorkerCap(in.PoolFrames); byPool < maxW {
			maxW = byPool
		}
	}
	// ParallelMs is convex in the worker count (dividable work plus a
	// linear fan-out charge), so the best fan-out is rarely an endpoint;
	// scan doublings up to maxW and keep the modeled minimum.
	if c.EstRPrime >= ParallelMinRows && maxW > 1 {
		for w := 2; ; w *= 2 {
			if w > maxW {
				w = maxW
			}
			if par := ParallelMs(serial, w) + ckptMs; par < c.EstMs {
				c.Workers = w
				c.EstMs = par
			}
			if w == maxW {
				break
			}
		}
	}
	return c
}

// CheckpointMs models the serial cost of persisting one iteration's
// durable checkpoint: a sequential write of R_k's packed pages (the
// manifest is noise next to it), plus — when the iteration ran spilled —
// a sequential read-back of those pages, since the relation being
// checkpointed then lives in runs rather than RAM. Rows are the
// projected |R_k|; callers pass the |R'_k| estimate as the conservative
// upper bound.
func CheckpointMs(rows int64, spilled bool) float64 {
	if rows <= 0 {
		return 0
	}
	p := PaperDBParams()
	pages := PackedPages(rows, PackedRowBytes)
	ms := SeqScanMs(p, pages)
	if spilled {
		ms *= 2
	}
	return ms
}

// String renders the nested-loop report in the paper's terms.
func (r NestedLoopReport) String() string {
	return fmt.Sprintf(
		"(item,tid) index: %d leaf pages, %d levels, %d non-leaf pages\n"+
			"(tid) index: %d leaf pages, %d non-leaf pages\n"+
			"|C1| = %d; per C1 tuple: %d leaf + %d tid fetches\n"+
			"total: %d random fetches = %.0f s (%.1f hours)",
		r.ItemTid.LeafPages, r.ItemTid.Levels, r.ItemTid.NonLeafPages,
		r.Tid.LeafPages, r.Tid.NonLeafPages,
		r.C1Size, r.LeafFetchesPerC1Tuple, r.TidFetchesPerC1Tuple,
		r.TotalFetches, r.Seconds, r.Seconds/3600)
}

// String renders the sort-merge report in the paper's terms.
func (r SortMergeReport) String() string {
	return fmt.Sprintf(
		"‖R‖ pages: %v\nformula bound: %d accesses; headline: %d accesses = %.0f s (%.1f min); speedup vs nested-loop: %.0fx",
		r.RPages, r.FormulaAccesses, r.HeadlineAccesses, r.Seconds, r.Seconds/60, r.SpeedupVsNestedLoop)
}
