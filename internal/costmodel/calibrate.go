package costmodel

import "math"

// Planner estimation constants, System-R style defaults: without
// histograms an equality conjunct is assumed to keep 1/10 of its input, a
// range comparison about 1/3, anything else 1/4, and a GROUP BY to emit
// one group per ten input rows. EXPLAIN ANALYZE runs observe the real
// ratios and Fit replaces the defaults with fitted values.
const (
	DefaultSelEquality = 0.10
	DefaultSelRange    = 0.30
	DefaultSelDefault  = 0.25
	DefaultGroupFrac   = 0.10
)

// Calibration holds the planner's tunable cardinality constants. The zero
// value is not meaningful; start from DefaultCalibration.
type Calibration struct {
	SelEquality float64 // selectivity of one equality conjunct
	SelRange    float64 // selectivity of one range conjunct
	SelDefault  float64 // selectivity of any other conjunct
	GroupFrac   float64 // expected groups per input row of a GROUP BY
}

// DefaultCalibration returns the built-in constants.
func DefaultCalibration() Calibration {
	return Calibration{
		SelEquality: DefaultSelEquality,
		SelRange:    DefaultSelRange,
		SelDefault:  DefaultSelDefault,
		GroupFrac:   DefaultGroupFrac,
	}
}

// Observation is one operator's actual cardinalities from an executed
// plan: a filter with its conjunct-class counts, or a grouping (Group
// true, Eq/Rng/Def zero). In and Out are the operator's actual input and
// output rows.
type Observation struct {
	Eq, Rng, Def int // filter conjunct counts by class
	Group        bool
	In, Out      int64
}

// ridgeLambda weights the prior toward the default constants: with few
// observations the fit stays near the defaults, with many the data wins.
const ridgeLambda = 1.0

// Fit fits Calibration constants from observations.
//
// A filter's predicted ratio is the product of its conjunct selectivities,
// so in log space one observation is linear in the unknowns:
//
//	ln(out/in) = eq·ln(selEq) + rng·ln(selRange) + def·ln(selDefault)
//
// Fit solves the 3-unknown least-squares system with a ridge prior toward
// the defaults (normal equations, 3×3 Gaussian elimination) and clamps the
// result into (0, 1]. GroupFrac is the geometric mean of the group
// observations' out/in ratios. With no observations of a kind the defaults
// survive unchanged.
func Fit(obs []Observation) Calibration {
	def := DefaultCalibration()
	x0 := [3]float64{math.Log(def.SelEquality), math.Log(def.SelRange), math.Log(def.SelDefault)}

	// Normal equations with ridge prior: (AᵀA + λI)x = Aᵀy + λx0.
	var ata [3][3]float64
	var aty [3]float64
	for _, o := range obs {
		if o.Group || o.In <= 0 {
			continue
		}
		n := [3]float64{float64(o.Eq), float64(o.Rng), float64(o.Def)}
		if n[0]+n[1]+n[2] == 0 {
			continue
		}
		y := math.Log(clampRatio(o.Out, o.In))
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += n[i] * n[j]
			}
			aty[i] += n[i] * y
		}
	}
	for i := 0; i < 3; i++ {
		ata[i][i] += ridgeLambda
		aty[i] += ridgeLambda * x0[i]
	}
	x := solve3(ata, aty)

	cal := Calibration{
		SelEquality: clampSel(math.Exp(x[0])),
		SelRange:    clampSel(math.Exp(x[1])),
		SelDefault:  clampSel(math.Exp(x[2])),
		GroupFrac:   def.GroupFrac,
	}

	var logSum float64
	var nGroup int
	for _, o := range obs {
		if !o.Group || o.In <= 0 {
			continue
		}
		logSum += math.Log(clampRatio(o.Out, o.In))
		nGroup++
	}
	if nGroup > 0 {
		cal.GroupFrac = clampSel(math.Exp(logSum / float64(nGroup)))
	}
	return cal
}

// clampRatio bounds out/in away from 0 (a filter that kept nothing still
// needs a finite log) and above by 1.
func clampRatio(out, in int64) float64 {
	r := float64(out) / float64(in)
	if lo := 0.5 / float64(in); r < lo {
		r = lo
	}
	if r > 1 {
		r = 1
	}
	return r
}

// clampSel keeps a fitted constant inside (0, 1].
func clampSel(v float64) float64 {
	if !(v > 1e-6) { // also catches NaN
		return 1e-6
	}
	if v > 1 {
		return 1
	}
	return v
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting. The ridge term keeps the matrix well-conditioned.
func solve3(a [3][3]float64, b [3]float64) [3]float64 {
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < 3; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x
}

// QError is the symmetric estimation-error factor max(est/act, act/est),
// the standard cardinality-estimation quality metric; 1 is a perfect
// estimate. Zero counts are smoothed to 1 row.
func QError(est, act int64) float64 {
	e, a := float64(est), float64(act)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}
