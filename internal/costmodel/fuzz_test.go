package costmodel

import "testing"

// FuzzChoosePlan: arbitrary (including adversarial) cardinalities,
// budgets, and worker counts must never yield an invalid plan or a
// panic. The validity contract is what the executor relies on: at least
// one worker, spilling only under a positive budget, non-negative model
// quantities, and a finite cost estimate.
func FuzzChoosePlan(f *testing.F) {
	f.Add(2, int64(1000), int64(4000), 5.0, true, int64(1<<20), 4, 256)
	f.Add(1, int64(0), int64(0), 0.0, false, int64(-1), 0, 0)
	f.Add(64, int64(1)<<62, int64(1)<<62, 1e18, true, int64(1), 1<<30, -5)
	f.Fuzz(func(t *testing.T, k int, prevR, prevRPrime int64, avgBasket float64,
		packedOK bool, budget int64, workers, poolFrames int) {
		c := ChoosePlan(PlanInput{
			K: k, PrevRRows: prevR, PrevRPrime: prevRPrime, AvgBasket: avgBasket,
			PackedOK: packedOK, Budget: budget, Workers: workers, PoolFrames: poolFrames,
		})
		if c.Workers < 1 {
			t.Fatalf("Workers = %d, want >= 1", c.Workers)
		}
		if workers >= 1 && c.Workers > workers {
			t.Fatalf("Workers = %d exceeds the %d available", c.Workers, workers)
		}
		if c.Spill && budget <= 0 {
			t.Fatal("spilled under an unbounded budget")
		}
		if c.Packed != packedOK {
			t.Fatalf("Packed = %v, want %v (generic only when the key overflows)", c.Packed, packedOK)
		}
		if c.EstRPrime < 0 || c.FootprintBytes < 0 {
			t.Fatalf("negative model quantities: rows=%d footprint=%d", c.EstRPrime, c.FootprintBytes)
		}
		if c.EstMs < 0 || c.EstMs != c.EstMs { // negative or NaN
			t.Fatalf("EstMs = %v", c.EstMs)
		}
	})
}
