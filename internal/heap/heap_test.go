package heap

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"setm/internal/storage"
	"setm/internal/tuple"
)

func newPool(frames int) *storage.Pool {
	return storage.NewPool(storage.NewMemStore(), frames)
}

func TestAppendScanRoundTrip(t *testing.T) {
	pool := newPool(16)
	f, err := Create(pool, tuple.IntSchema("trans_id", "item"))
	if err != nil {
		t.Fatal(err)
	}
	want := []tuple.Tuple{
		tuple.Ints(10, 1), tuple.Ints(10, 2), tuple.Ints(20, 1), tuple.Ints(30, 5),
	}
	if err := f.AppendAll(want); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if !tuple.EqualTuples(got[i], want[i]) {
			t.Errorf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
	if f.Rows() != int64(len(want)) {
		t.Errorf("Rows = %d, want %d", f.Rows(), len(want))
	}
}

func TestMultiPageSpill(t *testing.T) {
	pool := newPool(4)
	f, err := Create(pool, tuple.IntSchema("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // 3 ints = 24 bytes + 2 len; ~150/page, so ~34 pages
	for i := 0; i < n; i++ {
		if err := f.Append(tuple.Ints(int64(i), int64(i*2), int64(i*3))); err != nil {
			t.Fatal(err)
		}
	}
	if f.Pages() < 2 {
		t.Fatalf("expected multi-page file, got %d pages", f.Pages())
	}
	sc := f.Scan()
	defer sc.Close()
	i := 0
	for {
		tp, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tp[0].Int != int64(i) || tp[2].Int != int64(i*3) {
			t.Fatalf("row %d corrupted: %v", i, tp)
		}
		i++
	}
	if i != n {
		t.Errorf("scanned %d rows, want %d", i, n)
	}
}

func TestScanSurvivesEviction(t *testing.T) {
	// A pool of 2 frames forces every page of a large file to be evicted and
	// re-read; the scan must still see every tuple in order.
	pool := newPool(2)
	f, err := Create(pool, tuple.IntSchema("v"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := f.Append(tuple.Ints(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d rows, want %d", len(got), n)
	}
	for i, tp := range got {
		if tp[0].Int != int64(i) {
			t.Fatalf("row %d = %v", i, tp)
		}
	}
}

func TestStringColumns(t *testing.T) {
	pool := newPool(8)
	sch := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "name", Kind: tuple.KindString},
	)
	f, err := Create(pool, sch)
	if err != nil {
		t.Fatal(err)
	}
	rows := []tuple.Tuple{
		{tuple.I(1), tuple.S("bread")},
		{tuple.I(2), tuple.S("butter")},
		{tuple.I(3), tuple.S("")},
	}
	if err := f.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if !tuple.EqualTuples(got[i], rows[i]) {
			t.Errorf("row %d = %v, want %v", i, got[i], rows[i])
		}
	}
}

func TestOversizeTupleRejected(t *testing.T) {
	pool := newPool(8)
	sch := tuple.NewSchema(tuple.Column{Name: "s", Kind: tuple.KindString})
	f, err := Create(pool, sch)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, storage.PageSize)
	if err := f.Append(tuple.Tuple{tuple.S(string(big))}); err == nil {
		t.Error("oversize tuple accepted")
	}
}

func TestEmptyFileScan(t *testing.T) {
	pool := newPool(4)
	f, err := Create(pool, tuple.IntSchema("x"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty file scanned %d rows", len(got))
	}
	if f.Pages() != 1 {
		t.Errorf("empty file has %d pages, want 1", f.Pages())
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		pool := newPool(4)
		hf, err := Create(pool, tuple.IntSchema("v"))
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := hf.Append(tuple.Ints(v)); err != nil {
				return false
			}
		}
		got, err := hf.ReadAll()
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i, v := range vals {
			if got[i][0].Int != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPagesMatchesFootprint(t *testing.T) {
	pool := newPool(4)
	f, err := Create(pool, tuple.IntSchema("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		if err := f.Append(tuple.Ints(rng.Int63(), rng.Int63())); err != nil {
			t.Fatal(err)
		}
	}
	// 2 ints = 16 bytes + 2 prefix = 18 bytes; (4096-8)/18 = 227 per page.
	wantPages := (3000 + 226) / 227
	if f.Pages() != wantPages {
		t.Errorf("Pages = %d, want %d", f.Pages(), wantPages)
	}
	if f.SizeBytes() != int64(wantPages)*storage.PageSize {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
}
