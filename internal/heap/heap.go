// Package heap implements append-only record files ("heap files") over the
// paged storage layer. A heap file stores tuples of a fixed schema packed
// into a chain of pages; it supports appending and full sequential scans,
// which are the only access paths SETM needs for its R_k relations.
//
// Page layout:
//
//	offset 0:  u32 next page ID (InvalidPage at the tail)
//	offset 4:  u16 record count
//	offset 6:  u16 free offset (where the next record starts)
//	offset 8+: records, each prefixed by a u16 length
package heap

import (
	"fmt"
	"io"

	"setm/internal/storage"
	"setm/internal/tuple"
)

const (
	hdrNext  = 0
	hdrCount = 4
	hdrFree  = 6
	hdrSize  = 8
)

// File is a heap file: a linked list of record pages in a shared pool.
type File struct {
	pool   *storage.Pool
	schema *tuple.Schema

	first   storage.PageID
	last    storage.PageID
	pages   int
	rows    int64
	pageIDs []storage.PageID // every page of the chain, in order, for Free
}

// Create allocates an empty heap file with the given tuple schema.
func Create(pool *storage.Pool, schema *tuple.Schema) (*File, error) {
	pg, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	initPage(pg)
	id := pg.ID
	pool.Unpin(pg)
	return &File{pool: pool, schema: schema, first: id, last: id, pages: 1,
		pageIDs: []storage.PageID{id}}, nil
}

func initPage(pg *storage.Page) {
	pg.PutU32(hdrNext, uint32(storage.InvalidPage))
	pg.PutU16(hdrCount, 0)
	pg.PutU16(hdrFree, hdrSize)
	pg.MarkDirty()
}

// Schema returns the tuple schema of the file.
func (f *File) Schema() *tuple.Schema { return f.schema }

// Rows returns the number of tuples appended.
func (f *File) Rows() int64 { return f.rows }

// Pages returns the number of pages the file occupies. This is the
// quantity written ‖R_k‖ in the paper's I/O analysis.
func (f *File) Pages() int { return f.pages }

// SizeBytes returns the storage footprint in bytes (pages × page size).
func (f *File) SizeBytes() int64 { return int64(f.pages) * storage.PageSize }

// Append adds one tuple at the end of the file.
func (f *File) Append(t tuple.Tuple) error {
	need := tuple.EncodedSize(f.schema, t) + 2
	if need > storage.PageSize-hdrSize {
		return fmt.Errorf("heap: tuple of %d bytes exceeds page capacity", need)
	}
	pg, err := f.pool.Fetch(f.last)
	if err != nil {
		return err
	}
	free := int(pg.U16(hdrFree))
	if free+need > storage.PageSize {
		// Chain a new page.
		npg, err := f.pool.Allocate()
		if err != nil {
			f.pool.Unpin(pg)
			return err
		}
		initPage(npg)
		pg.PutU32(hdrNext, uint32(npg.ID))
		pg.MarkDirty()
		f.pool.Unpin(pg)
		pg = npg
		f.last = npg.ID
		f.pages++
		f.pageIDs = append(f.pageIDs, npg.ID)
		free = hdrSize
	}
	enc, err := tuple.Encode(pg.Data[free+2:free+2], f.schema, t)
	if err != nil {
		f.pool.Unpin(pg)
		return err
	}
	pg.PutU16(free, uint16(len(enc)))
	// Encode wrote into the page buffer via the sub-slice only if capacity
	// allowed; copy explicitly to be safe against reallocation.
	copy(pg.Data[free+2:], enc)
	pg.PutU16(hdrFree, uint16(free+2+len(enc)))
	pg.PutU16(hdrCount, pg.U16(hdrCount)+1)
	pg.MarkDirty()
	f.pool.Unpin(pg)
	f.rows++
	return nil
}

// AppendAll appends every tuple in ts.
func (f *File) AppendAll(ts []tuple.Tuple) error {
	for _, t := range ts {
		if err := f.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// AppendBatch appends every logical row of b, encoding column vectors
// straight into page buffers — the bulk path of the vectorized executor,
// which skips the per-row tuple materialization of Append.
func (f *File) AppendBatch(b *tuple.Batch) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	pg, err := f.pool.Fetch(f.last)
	if err != nil {
		return err
	}
	free := int(pg.U16(hdrFree))
	for i := 0; i < n; i++ {
		need := b.EncodedRowSize(i) + 2
		if need > storage.PageSize-hdrSize {
			f.pool.Unpin(pg)
			return fmt.Errorf("heap: tuple of %d bytes exceeds page capacity", need)
		}
		if free+need > storage.PageSize {
			npg, err := f.pool.Allocate()
			if err != nil {
				f.pool.Unpin(pg)
				return err
			}
			initPage(npg)
			pg.PutU16(hdrFree, uint16(free))
			pg.PutU32(hdrNext, uint32(npg.ID))
			pg.MarkDirty()
			f.pool.Unpin(pg)
			pg = npg
			f.last = npg.ID
			f.pages++
			f.pageIDs = append(f.pageIDs, npg.ID)
			free = hdrSize
		}
		enc := b.EncodeRowTo(pg.Data[free+2:free+2], i)
		pg.PutU16(free, uint16(len(enc)))
		copy(pg.Data[free+2:], enc)
		free += 2 + len(enc)
		pg.PutU16(hdrCount, pg.U16(hdrCount)+1)
		f.rows++
	}
	pg.PutU16(hdrFree, uint16(free))
	pg.MarkDirty()
	f.pool.Unpin(pg)
	return nil
}

// Free returns every page of the file to the pool's free list. The caller
// must guarantee no scanner or operator still references the file —
// recycled pages would be decoded as foreign rows. The engine satisfies
// this by executing statements one at a time: Free runs only from DROP
// TABLE / DELETE FROM / table replacement, never with a query in flight.
// Freeing keeps dropped intermediates from growing the store without
// bound.
func (f *File) Free() {
	f.pool.FreePages(f.pageIDs)
	f.pageIDs = nil
	f.pages = 0
	f.rows = 0
}

// Scanner iterates a heap file front to back — the whole chain, or a
// contiguous page range (a morsel of the parallel executor). Next returns
// io.EOF after the final tuple of the range.
type Scanner struct {
	file *File
	pg   *storage.Page
	idx  int
	off  int
	done bool

	pageIdx int // index into file.pageIDs of the current page
	endIdx  int // exclusive page-range bound
}

// Scan returns a scanner positioned before the first tuple.
func (f *File) Scan() *Scanner { return f.ScanRange(0, len(f.pageIDs)) }

// ScanRange returns a scanner over the pages [start, end) of the file (by
// page position, not page ID) — the morsel granularity of the parallel
// executor: disjoint ranges partition the file's rows in order. Bounds are
// clamped to the file.
func (f *File) ScanRange(start, end int) *Scanner {
	if start < 0 {
		start = 0
	}
	if end > len(f.pageIDs) {
		end = len(f.pageIDs)
	}
	s := &Scanner{file: f, pageIdx: start, endIdx: end}
	if start >= end {
		s.done = true
	}
	return s
}

// FirstKey decodes the first record of page pageIdx (by position) and
// returns its integer column col. ok is false when the page holds no
// records (only the tail page of a file can be empty) or the column is not
// an integer. The parallel planner uses it to pick key-aligned morsel
// boundaries without scanning.
func (f *File) FirstKey(pageIdx, col int) (v int64, ok bool, err error) {
	if pageIdx < 0 || pageIdx >= len(f.pageIDs) {
		return 0, false, fmt.Errorf("heap: page index %d out of range (%d pages)", pageIdx, len(f.pageIDs))
	}
	pg, err := f.pool.Fetch(f.pageIDs[pageIdx])
	if err != nil {
		return 0, false, err
	}
	defer f.pool.Unpin(pg)
	if pg.U16(hdrCount) == 0 {
		return 0, false, nil
	}
	n := int(pg.U16(hdrSize))
	rec := pg.Data[hdrSize+2 : hdrSize+2+n]
	t, _, err := tuple.Decode(rec, f.schema)
	if err != nil {
		return 0, false, err
	}
	if col < 0 || col >= len(t) || t[col].Kind != tuple.KindInt {
		return 0, false, nil
	}
	return t[col].Int, true, nil
}

// advance pins the next page of the range, releasing the current one.
// Returns false when the range is exhausted (done is set).
func (s *Scanner) advance() (bool, error) {
	if s.pg != nil {
		s.file.pool.Unpin(s.pg)
		s.pg = nil
		s.pageIdx++
	}
	if s.pageIdx >= s.endIdx {
		s.done = true
		return false, nil
	}
	pg, err := s.file.pool.Fetch(s.file.pageIDs[s.pageIdx])
	if err != nil {
		s.done = true
		return false, err
	}
	s.pg = pg
	s.idx = 0
	s.off = hdrSize
	return true, nil
}

// Next returns the next tuple, or io.EOF when exhausted.
func (s *Scanner) Next() (tuple.Tuple, error) {
	if s.done {
		return nil, io.EOF
	}
	for {
		if s.pg == nil {
			ok, err := s.advance()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, io.EOF
			}
		}
		if s.idx < int(s.pg.U16(hdrCount)) {
			n := int(s.pg.U16(s.off))
			rec := s.pg.Data[s.off+2 : s.off+2+n]
			t, _, err := tuple.Decode(rec, s.file.schema)
			if err != nil {
				return nil, err
			}
			s.off += 2 + n
			s.idx++
			return t, nil
		}
		if ok, err := s.advance(); err != nil {
			return nil, err
		} else if !ok {
			return nil, io.EOF
		}
	}
}

// NextBatch decodes up to max further tuples directly into b's column
// vectors (appending to its current contents) and reports how many were
// added. It returns io.EOF only when the file is exhausted and no rows
// were added.
func (s *Scanner) NextBatch(b *tuple.Batch, max int) (int, error) {
	if s.done {
		return 0, io.EOF
	}
	added := 0
	for added < max {
		if s.pg == nil {
			ok, err := s.advance()
			if err != nil {
				return added, err
			}
			if !ok {
				if added == 0 {
					return 0, io.EOF
				}
				return added, nil
			}
		}
		count := int(s.pg.U16(hdrCount))
		for s.idx < count && added < max {
			n := int(s.pg.U16(s.off))
			rec := s.pg.Data[s.off+2 : s.off+2+n]
			if _, err := b.AppendEncoded(rec); err != nil {
				return added, err
			}
			s.off += 2 + n
			s.idx++
			added++
		}
		if s.idx < count {
			return added, nil // batch full mid-page
		}
		if ok, err := s.advance(); err != nil {
			return added, err
		} else if !ok {
			if added == 0 {
				return 0, io.EOF
			}
			return added, nil
		}
	}
	return added, nil
}

// Close releases any pinned page; safe to call multiple times.
func (s *Scanner) Close() {
	if s.pg != nil {
		s.file.pool.Unpin(s.pg)
		s.pg = nil
	}
	s.done = true
}

// ReadAll scans the whole file into memory; intended for tests and small
// relations such as the C_k count tables.
func (f *File) ReadAll() ([]tuple.Tuple, error) {
	sc := f.Scan()
	defer sc.Close()
	var out []tuple.Tuple
	for {
		t, err := sc.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}
